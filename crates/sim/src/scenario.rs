//! The scenario layer: one declarative [`ScenarioSpec`] drives every
//! protocol family.
//!
//! Before this layer existed, every consumer of a protocol (benches,
//! examples, integration suites) hand-wired its own `Simulation::build`
//! glue: timing model, oracle, skew schedule, Byzantine slots, keychain,
//! constructor call. Adding a protocol variant meant editing six call
//! sites. Now a protocol family registers **once** (a key, a resilience
//! band, and a spec-driven constructor) in a [`ScenarioRegistry`], and
//! every consumer — tables, figures, throughput rows, property tests, the
//! parallel [`crate::Sweep`] grid — builds [`ScenarioSpec`] values and asks
//! the registry to run them.
//!
//! The spec is fully declarative and deterministic: the same spec always
//! produces the same [`Outcome`], including its seeded adversary mixes
//! (random Byzantine subsets, crash schedules), seeded in-model delay
//! oracles and seeded clock skews.
//!
//! # Examples
//!
//! Registering and running a family:
//!
//! ```
//! use gcl_sim::{
//!     Admission, Context, Protocol, ScenarioRegistry, ScenarioSpec, ValidityMode,
//! };
//! use gcl_types::{PartyId, Value};
//!
//! struct Echo {
//!     input: Option<Value>,
//! }
//! impl Protocol for Echo {
//!     type Msg = Value;
//!     fn start(&mut self, ctx: &mut dyn Context<Value>) {
//!         if let Some(v) = self.input {
//!             ctx.multicast(v);
//!         }
//!     }
//!     fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
//!         ctx.commit(v);
//!         ctx.terminate();
//!     }
//! }
//!
//! let mut reg = ScenarioRegistry::new();
//! reg.register_fn(
//!     "echo",
//!     "one-round flood baseline",
//!     Admission::Any,
//!     ValidityMode::Broadcast,
//!     ScenarioSpec::asynchronous("echo", 4, 1),
//!     |spec, backend| {
//!         spec.run_protocol_on(backend, |p| Echo { input: spec.input_for(p) })
//!     },
//! );
//! let outcome = reg.run(&reg.spec("echo").unwrap()).unwrap();
//! assert!(outcome.agreement_holds());
//! ```
//!
//! The `backend` parameter is what makes a registration execution-target
//! agnostic: [`ScenarioRegistry::run`] passes the inline simulator, while
//! [`ScenarioRegistry::run_on`] can pass any other [`Backend`] (e.g.
//! `gcl_net`'s wall-clock thread runtime) and the same one-line
//! registration runs there too.

use crate::backend::{Backend, Erase, ErasedMsg, ErasedSlot, MsgCodec, SimBackend};
use crate::context::Protocol;
use crate::network::{FixedDelay, RandomDelay, TimingModel};
use crate::outcome::Outcome;
use crate::runner::{Simulation, SimulationBuilder};
use crate::strategies::{Crashing, Silent};
use gcl_types::{Config, ConfigError, Duration, GlobalTime, PartyId, SkewSchedule, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Debug;

/// Seed salt for the adversary-placement RNG (kept distinct from the
/// delay and skew streams so the three draws are independent).
const ADVERSARY_SALT: u64 = 0xad5e_ea17_0000_0001;
/// Seed salt for the delay-oracle RNG.
const DELAY_SALT: u64 = 0xde1a_ea17_0000_0002;
/// Seed salt for the skew-schedule RNG.
const SKEW_SALT: u64 = 0x5cec_ea17_0000_0003;

/// SplitMix64 step — the canonical way to derive independent sub-seeds.
fn mix_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The timing-model shape of a scenario; [`ScenarioSpec::delta`] /
/// [`ScenarioSpec::big_delta`] supply the bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingKind {
    /// Arbitrary finite delays.
    Asynchrony,
    /// GST = 0, post-GST bound `big_delta`.
    PartialSynchrony,
    /// Actual bound `delta`, conservative bound `big_delta`. With
    /// `delta == big_delta` this is the classical lock-step model.
    Synchrony,
}

/// How the delay oracle behaves within the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayChoice {
    /// Every message takes exactly [`ScenarioSpec::delta`] — the canonical
    /// good-case schedule behind every measured table row.
    Fixed,
    /// Per-message delays drawn uniformly from `[lo, hi]`, seeded from the
    /// spec (the runner still clamps to the timing model on honest links).
    Uniform {
        /// Lower bound of the draw.
        lo: Duration,
        /// Upper bound of the draw.
        hi: Duration,
    },
}

/// Per-party protocol start skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewChoice {
    /// Synchronized start (σ = 0).
    Synchronized,
    /// Odd-indexed parties start `δ/2` late — the canonical worst-ish-case
    /// schedule of the Figure 9 unsynchronized-start measurements.
    OddHalfDelta,
    /// Every non-broadcaster party starts late by a seeded uniform draw
    /// from `[0, max]`.
    Random {
        /// Largest admissible lateness.
        max: Duration,
    },
}

/// The Byzantine population of a scenario. All placements and crash
/// budgets derive deterministically from [`ScenarioSpec::seed`]; subset
/// sizes are always clamped to the spec's fault budget `f` — except
/// [`AdversaryMix::CrashAt`], which is deliberate failure injection and
/// may target any party (even beyond the budget, e.g. at `f = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryMix {
    /// All parties honest.
    None,
    /// The trailing `min(count, f)` slots (highest ids) run [`Silent`] —
    /// the canonical dishonest-majority schedule.
    TrailingSilent {
        /// Requested subset size (clamped to `f`; `u32::MAX` = "all `f`").
        count: u32,
    },
    /// A seeded random subset of `min(count, f)` parties runs [`Silent`].
    RandomSilent {
        /// Requested subset size (clamped to `f`).
        count: u32,
    },
    /// A seeded random subset of `min(count, f)` parties runs the honest
    /// code wrapped in [`Crashing`], each with a seeded crash budget drawn
    /// from `[0, max_handled]` handled events.
    RandomCrashing {
        /// Requested subset size (clamped to `f`).
        count: u32,
        /// Largest crash budget any chosen party may draw.
        max_handled: u32,
    },
    /// One specific party runs the honest code wrapped in [`Crashing`]
    /// with an exact crash budget — deterministic failure injection,
    /// exempt from the `≤ f` clamp. The registry rejects a party id
    /// outside `0..n` at validation time.
    CrashAt {
        /// The crashing party.
        party: PartyId,
        /// Events it handles before going silent.
        handled: u32,
    },
    /// A kill schedule for leader-rotation fault injection: the first
    /// `min(count, f)` parties — the round-robin leaders of views
    /// 1, 2, … — run the honest code wrapped in [`Crashing`], with party
    /// `i` crashing after `first_handled + i × stagger` handled events.
    /// The result is `k ≤ f` *successive* leaders dying mid-run, each a
    /// little later than its predecessor, so every crash lands on the
    /// party currently holding proposal rights.
    LeaderCascade {
        /// Requested cascade length (clamped to `f`).
        count: u32,
        /// Crash budget of the first leader (party 0).
        first_handled: u32,
        /// Additional handled events each successive leader survives.
        stagger: u32,
    },
}

/// Family-specific tuning knobs that do not warrant their own family key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyParams {
    /// Early-vote grid resolution (the Figure 8/9 `m`).
    pub m: u64,
    /// Workload length for log-replication families.
    pub commands: u64,
    /// Pipeline depth for log-replication families.
    pub pipeline: usize,
    /// Max commands per proposed batch for log-replication families.
    pub batch: usize,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            m: 10,
            commands: 50,
            pipeline: 4,
            batch: 4,
        }
    }
}

/// A resilience band: which `(n, f)` shapes a family admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// `n ≥ 3f + 1`, `f ≥ 1` (BRB / psync-BB solvable).
    Brb,
    /// `n ≥ 5f − 1`, `f ≥ 1` (2-round psync-BB solvable).
    TwoRoundPsync,
    /// `0 < f < n/3`.
    UnderThird,
    /// `f = n/3` exactly.
    ExactThird,
    /// `n/3 < f < n/2`.
    ThirdToHalf,
    /// `n/2 ≤ f < n`.
    Majority,
    /// Any valid [`Config`] (including `f = 0`).
    Any,
}

impl Admission {
    /// Whether the band admits `(n, f)`.
    pub fn admits(&self, n: usize, f: usize) -> bool {
        if n < 2 || f >= n {
            return false;
        }
        match self {
            Admission::Brb => f >= 1 && n > 3 * f,
            Admission::TwoRoundPsync => f >= 1 && n >= 5 * f - 1,
            Admission::UnderThird => f >= 1 && 3 * f < n,
            Admission::ExactThird => f >= 1 && 3 * f == n,
            Admission::ThirdToHalf => 3 * f > n && 2 * f < n,
            Admission::Majority => 2 * f >= n,
            Admission::Any => true,
        }
    }

    /// The band rendered the way Table 1 renders it.
    pub fn describe(&self) -> &'static str {
        match self {
            Admission::Brb => "n >= 3f+1",
            Admission::TwoRoundPsync => "n >= 5f-1",
            Admission::UnderThird => "0 < f < n/3",
            Admission::ExactThird => "f = n/3",
            Admission::ThirdToHalf => "n/3 < f < n/2",
            Admission::Majority => "n/2 <= f < n",
            Admission::Any => "any f < n",
        }
    }
}

/// What "validity" means when auditing a family's [`Outcome`] (used by the
/// sweep engine and the property suites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityMode {
    /// Broadcast validity: while the broadcaster slot is honest, every
    /// honest commit must equal [`ScenarioSpec::input`].
    Broadcast,
    /// Only agreement is audited (multi-shot families whose commit values
    /// are workload-derived, not the broadcast input).
    AgreementOnly,
}

/// One fully-described executable scenario cell.
///
/// Everything the run needs is in here: the protocol family key, the
/// system shape, the timing model and its bounds, the adversary mix, the
/// delay and skew choices, the broadcaster, the input, the RNG seed (which
/// also seeds the family's keychain) and family-specific params. Specs are
/// plain data — clone them, mutate fields, put them in grids.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registered family key.
    pub family: &'static str,
    /// Number of parties.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Timing-model shape.
    pub timing: TimingKind,
    /// Actual delay bound δ (also the fixed-oracle delay).
    pub delta: Duration,
    /// Conservative bound Δ handed to protocols that take one.
    pub big_delta: Duration,
    /// Delay-oracle behavior.
    pub delays: DelayChoice,
    /// Byzantine population.
    pub adversary: AdversaryMix,
    /// Start-time skew.
    pub skew: SkewChoice,
    /// Designated broadcaster.
    pub broadcaster: PartyId,
    /// The broadcast input value.
    pub input: Value,
    /// Master seed: keychain generation, adversary placement, crash
    /// budgets, random delays and random skews all derive from it.
    pub seed: u64,
    /// Family-specific knobs.
    pub params: FamilyParams,
}

impl ScenarioSpec {
    /// A spec with the canonical δ = 100µs / Δ = 1000µs split and every
    /// other field at its default (fixed delays, no adversary, no skew,
    /// broadcaster 0, input 42, seed 0).
    pub fn new(family: &'static str, timing: TimingKind, n: usize, f: usize) -> Self {
        ScenarioSpec {
            family,
            n,
            f,
            timing,
            delta: Duration::from_micros(100),
            big_delta: Duration::from_micros(1_000),
            delays: DelayChoice::Fixed,
            adversary: AdversaryMix::None,
            skew: SkewChoice::Synchronized,
            broadcaster: PartyId::new(0),
            input: Value::new(42),
            seed: 0,
            params: FamilyParams::default(),
        }
    }

    /// An asynchronous spec (δ = 100µs fixed-delay oracle).
    pub fn asynchronous(family: &'static str, n: usize, f: usize) -> Self {
        ScenarioSpec::new(family, TimingKind::Asynchrony, n, f)
    }

    /// A partially synchronous spec with Δ = δ = 100µs (the canonical
    /// good-case psync measurement: the known bound matches the network).
    pub fn psync(family: &'static str, n: usize, f: usize) -> Self {
        ScenarioSpec::new(family, TimingKind::PartialSynchrony, n, f)
            .with_bounds(Duration::from_micros(100), Duration::from_micros(100))
    }

    /// A synchronous spec with the canonical δ = 100µs ≪ Δ = 1000µs split.
    pub fn synchronous(family: &'static str, n: usize, f: usize) -> Self {
        ScenarioSpec::new(family, TimingKind::Synchrony, n, f)
    }

    /// A lock-step synchronous spec (δ = Δ = `step`).
    pub fn lockstep(family: &'static str, n: usize, f: usize, step: Duration) -> Self {
        ScenarioSpec::new(family, TimingKind::Synchrony, n, f).with_bounds(step, step)
    }

    /// Replaces the `(n, f)` shape.
    #[must_use]
    pub fn with_shape(mut self, n: usize, f: usize) -> Self {
        self.n = n;
        self.f = f;
        self
    }

    /// Replaces δ and Δ.
    #[must_use]
    pub fn with_bounds(mut self, delta: Duration, big_delta: Duration) -> Self {
        self.delta = delta;
        self.big_delta = big_delta;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the adversary mix.
    #[must_use]
    pub fn with_adversary(mut self, adversary: AdversaryMix) -> Self {
        self.adversary = adversary;
        self
    }

    /// Replaces the delay choice.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayChoice) -> Self {
        self.delays = delays;
        self
    }

    /// Replaces the skew choice.
    #[must_use]
    pub fn with_skew(mut self, skew: SkewChoice) -> Self {
        self.skew = skew;
        self
    }

    /// Replaces the broadcast input.
    #[must_use]
    pub fn with_input(mut self, input: Value) -> Self {
        self.input = input;
        self
    }

    /// Replaces the grid resolution `m`.
    #[must_use]
    pub fn with_m(mut self, m: u64) -> Self {
        self.params.m = m;
        self
    }

    /// Replaces the log-replication workload shape.
    #[must_use]
    pub fn with_workload(mut self, commands: u64, pipeline: usize) -> Self {
        self.params.commands = commands;
        self.params.pipeline = pipeline;
        self
    }

    /// Replaces the log-replication proposal batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.params.batch = batch;
        self
    }

    /// The `(n, f)` configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for nonsensical shapes.
    pub fn config(&self) -> Result<Config, ConfigError> {
        Config::new(self.n, self.f)
    }

    /// The spec's input if `p` is the broadcaster (the shape every
    /// protocol constructor takes).
    pub fn input_for(&self, p: PartyId) -> Option<Value> {
        (p == self.broadcaster).then_some(self.input)
    }

    /// The concrete [`TimingModel`].
    pub fn timing_model(&self) -> TimingModel {
        match self.timing {
            TimingKind::Asynchrony => TimingModel::Asynchrony,
            TimingKind::PartialSynchrony => TimingModel::PartialSynchrony {
                gst: GlobalTime::ZERO,
                big_delta: self.big_delta,
            },
            TimingKind::Synchrony => TimingModel::Synchrony {
                delta: self.delta,
                big_delta: self.big_delta,
            },
        }
    }

    /// The concrete [`SkewSchedule`].
    pub fn skew_schedule(&self) -> SkewSchedule {
        match self.skew {
            SkewChoice::Synchronized => SkewSchedule::synchronized(self.n),
            SkewChoice::OddHalfDelta => {
                let late: Vec<(PartyId, Duration)> = (1..self.n as u32)
                    .filter(|i| i % 2 == 1)
                    .map(|i| (PartyId::new(i), self.delta.halved()))
                    .collect();
                SkewSchedule::with_late_parties(self.n, &late)
            }
            SkewChoice::Random { max } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ SKEW_SALT);
                let late: Vec<(PartyId, Duration)> = (0..self.n as u32)
                    .map(PartyId::new)
                    .filter(|&p| p != self.broadcaster)
                    .map(|p| {
                        let us = rng.gen_range(0..=max.as_micros());
                        (p, Duration::from_micros(us))
                    })
                    .collect();
                SkewSchedule::with_late_parties(self.n, &late)
            }
        }
    }

    /// The Byzantine slots of this spec, ascending, with each slot's role.
    /// Deterministic in the seed; subset sizes are clamped to `f`.
    pub fn adversary_slots(&self) -> Vec<(PartyId, AdversaryRole)> {
        let clamp = |count: u32| (count as usize).min(self.f);
        match self.adversary {
            AdversaryMix::None => Vec::new(),
            AdversaryMix::TrailingSilent { count } => {
                let k = clamp(count);
                (self.n - k..self.n)
                    .map(|i| (PartyId::new(i as u32), AdversaryRole::Silent))
                    .collect()
            }
            AdversaryMix::RandomSilent { count } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ ADVERSARY_SALT);
                sample_distinct(&mut rng, self.n, clamp(count))
                    .into_iter()
                    .map(|i| (PartyId::new(i), AdversaryRole::Silent))
                    .collect()
            }
            AdversaryMix::RandomCrashing { count, max_handled } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ ADVERSARY_SALT);
                let slots = sample_distinct(&mut rng, self.n, clamp(count));
                // Budgets are drawn after placement, in slot order, so the
                // stream is stable under subset-size changes.
                slots
                    .into_iter()
                    .map(|i| {
                        let handled = rng.gen_range(0..=max_handled);
                        (PartyId::new(i), AdversaryRole::Crash { handled })
                    })
                    .collect()
            }
            AdversaryMix::CrashAt { party, handled } => {
                vec![(party, AdversaryRole::Crash { handled })]
            }
            AdversaryMix::LeaderCascade {
                count,
                first_handled,
                stagger,
            } => (0..clamp(count) as u32)
                .map(|i| {
                    (
                        PartyId::new(i),
                        AdversaryRole::Crash {
                            handled: first_handled + i * stagger,
                        },
                    )
                })
                .collect(),
        }
    }

    /// The simulation builder this spec describes: timing model, delay
    /// oracle, skew schedule and broadcaster installed, slots still empty.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not a valid [`Config`] (the registry's
    /// [`ScenarioRegistry::run`] validates shapes before getting here).
    pub(crate) fn sim_builder<M: Clone + Debug + Send + 'static>(&self) -> SimulationBuilder<M> {
        let cfg = self.config().expect("spec shape must be a valid Config");
        let b = Simulation::build::<M>(cfg)
            .timing(self.timing_model())
            .skew(self.skew_schedule())
            .broadcaster(self.broadcaster)
            // The spec's δ sizes the calendar queue's buckets, so one
            // fixed-delay multicast lands in a single time slot.
            .queue_delta(self.delta);
        match self.delays {
            DelayChoice::Fixed => b.oracle(FixedDelay::new(self.delta)),
            DelayChoice::Uniform { lo, hi } => {
                b.oracle(RandomDelay::new(lo, hi, self.seed ^ DELAY_SALT))
            }
        }
    }

    /// Assembles and runs the simulation this spec describes around the
    /// family's honest protocol constructor. This is the one place where a
    /// family's message-type generic meets the type-erased spec: timing
    /// model, delay oracle, skew, Byzantine slots (silent or crashing
    /// wrappers around `make`) and honest spawning all come from the spec.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not a valid [`Config`] (the registry's
    /// [`ScenarioRegistry::run`] validates shapes before getting here).
    pub fn run_protocol<P: Protocol>(&self, mut make: impl FnMut(PartyId) -> P) -> Outcome {
        let mut b = self.sim_builder::<P::Msg>();
        for (p, role) in self.adversary_slots() {
            b = match role {
                AdversaryRole::Silent => b.byzantine(p, Silent::<P::Msg>::new()),
                AdversaryRole::Crash { handled } => {
                    b.byzantine(p, Crashing::new(make(p), handled as usize))
                }
            };
        }
        b.spawn_honest(make).run()
    }

    /// Runs this spec on an arbitrary [`Backend`] — the execution-target-
    /// agnostic form of [`ScenarioSpec::run_protocol`] that registered
    /// family closures call. The native simulator backend takes the
    /// erasure-free hot loop; every other backend receives the spec's
    /// party slots type-erased via [`ScenarioSpec::erased_slots`] plus the
    /// [`MsgCodec`] that round-trips the family's message type through
    /// bytes (this is the one place that still sees the `P::Msg` generic,
    /// so it is where the codec gets monomorphized).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not a valid [`Config`].
    pub fn run_protocol_on<P: Protocol>(
        &self,
        backend: &dyn Backend,
        make: impl FnMut(PartyId) -> P,
    ) -> Outcome {
        if backend.native_sim() {
            self.run_protocol(make)
        } else {
            backend.execute(self, self.erased_slots(make), MsgCodec::of::<P::Msg>())
        }
    }

    /// The spec's `n` party slots, type-erased for a [`Backend`]: honest
    /// slots wrap `make(p)`, Byzantine slots per
    /// [`ScenarioSpec::adversary_slots`] get [`Silent`] or a [`Crashing`]
    /// wrapper around the honest code — exactly the population
    /// [`ScenarioSpec::run_protocol`] spawns inline.
    pub fn erased_slots<P: Protocol>(&self, mut make: impl FnMut(PartyId) -> P) -> Vec<ErasedSlot> {
        let mut roles: Vec<Option<AdversaryRole>> = vec![None; self.n];
        for (p, role) in self.adversary_slots() {
            roles[p.as_usize()] = Some(role);
        }
        roles
            .into_iter()
            .enumerate()
            .map(|(i, role)| {
                let p = PartyId::new(i as u32);
                match role {
                    None => ErasedSlot {
                        strategy: Box::new(Erase::<P::Msg, P>::new(make(p))),
                        honest: true,
                    },
                    Some(AdversaryRole::Silent) => ErasedSlot {
                        strategy: Box::new(Silent::<ErasedMsg>::new()),
                        honest: false,
                    },
                    Some(AdversaryRole::Crash { handled }) => ErasedSlot {
                        strategy: Box::new(Erase::<P::Msg, _>::new(Crashing::new(
                            make(p),
                            handled as usize,
                        ))),
                        honest: false,
                    },
                }
            })
            .collect()
    }

    /// The per-link delivery delays (`from * n + to` indexing, self-links
    /// zero) a wall-clock backend should inject for this spec — the
    /// deterministic analogue of the simulator's per-message oracle:
    /// [`DelayChoice::Fixed`] puts δ on every inter-party link, while
    /// [`DelayChoice::Uniform`] draws one seeded delay per link from
    /// `[lo, hi]`. Either way the draw is clamped to the timing model's
    /// honest bound (δ under synchrony, Δ under partial synchrony), so a
    /// jittered wall-clock run stays inside the model the protocol was
    /// promised.
    pub fn link_delays(&self) -> Vec<Duration> {
        let n = self.n;
        let cap = match self.timing {
            TimingKind::Synchrony => Some(self.delta),
            TimingKind::PartialSynchrony => Some(self.big_delta),
            TimingKind::Asynchrony => None,
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ DELAY_SALT);
        let mut links = vec![Duration::ZERO; n * n];
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let d = match self.delays {
                    DelayChoice::Fixed => self.delta,
                    DelayChoice::Uniform { lo, hi } => {
                        Duration::from_micros(rng.gen_range(lo.as_micros()..=hi.as_micros()))
                    }
                };
                links[from * n + to] = cap.map_or(d, |c| d.min(c));
            }
        }
        links
    }

    /// A compact stable label (`family/n..f../s..`) for reports and logs.
    pub fn label(&self) -> String {
        let mut s = format!("{}/n{}f{}/s{}", self.family, self.n, self.f, self.seed);
        match self.adversary {
            AdversaryMix::None => {}
            AdversaryMix::TrailingSilent { .. } => s.push_str("/silent-trail"),
            AdversaryMix::RandomSilent { .. } => s.push_str("/silent-rand"),
            AdversaryMix::RandomCrashing { .. } => s.push_str("/crash-rand"),
            AdversaryMix::CrashAt { .. } => s.push_str("/crash-at"),
            AdversaryMix::LeaderCascade { .. } => s.push_str("/crash-cascade"),
        }
        if self.delays != DelayChoice::Fixed {
            s.push_str("/jitter");
        }
        if self.skew != SkewChoice::Synchronized {
            s.push_str("/skew");
        }
        s
    }
}

/// What a Byzantine slot chosen by [`ScenarioSpec::adversary_slots`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryRole {
    /// [`Silent`] from the start.
    Silent,
    /// Honest code wrapped in [`Crashing`] with this handled-event budget.
    Crash {
        /// Events handled before the crash.
        handled: u32,
    },
}

/// Draws `count` distinct indices from `0..n`, ascending (partial
/// Fisher–Yates, then sorted so installation order is stable).
fn sample_distinct(rng: &mut StdRng, n: usize, count: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let count = count.min(n);
    for i in 0..count {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids.sort_unstable();
    ids
}

/// A registered protocol family: a key, a resilience band, and the
/// spec-driven runner that erases the family's message-type generic.
pub trait ScenarioFamily: Send + Sync {
    /// The registry key.
    fn key(&self) -> &'static str;

    /// One-line human description (protocol + paper reference).
    fn describe(&self) -> &'static str;

    /// The `(n, f)` shapes this family admits.
    fn admission(&self) -> Admission;

    /// How [`Self::upholds_validity`] audits outcomes.
    fn validity_mode(&self) -> ValidityMode {
        ValidityMode::Broadcast
    }

    /// The family's canonical spec (its smallest interesting shape with
    /// the family's historical keychain seed).
    fn canonical(&self) -> ScenarioSpec;

    /// Runs `spec` (shape already validated by the registry) on the given
    /// execution backend.
    fn run_on(&self, spec: &ScenarioSpec, backend: &dyn Backend) -> Outcome;

    /// Runs `spec` on the inline simulator — the default, erasure-free
    /// execution target.
    fn run(&self, spec: &ScenarioSpec) -> Outcome {
        self.run_on(spec, &SimBackend::new())
    }

    /// Audits broadcast validity per [`Self::validity_mode`]: while the
    /// broadcaster slot is honest, every honest commit equals the input.
    fn upholds_validity(&self, spec: &ScenarioSpec, outcome: &Outcome) -> bool {
        match self.validity_mode() {
            ValidityMode::AgreementOnly => true,
            ValidityMode::Broadcast => {
                !outcome.is_honest(spec.broadcaster)
                    || outcome.honest_commits().all(|c| c.value == spec.input)
            }
        }
    }
}

/// A [`ScenarioFamily`] built from a plain function — the one-registration
/// path most families take.
pub struct FnFamily<F> {
    key: &'static str,
    describe: &'static str,
    admission: Admission,
    validity: ValidityMode,
    canonical: ScenarioSpec,
    run: F,
}

impl<F> fmt::Debug for FnFamily<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnFamily")
            .field("key", &self.key)
            .field("admission", &self.admission)
            .finish()
    }
}

impl<F> ScenarioFamily for FnFamily<F>
where
    F: Fn(&ScenarioSpec, &dyn Backend) -> Outcome + Send + Sync,
{
    fn key(&self) -> &'static str {
        self.key
    }
    fn describe(&self) -> &'static str {
        self.describe
    }
    fn admission(&self) -> Admission {
        self.admission
    }
    fn validity_mode(&self) -> ValidityMode {
        self.validity
    }
    fn canonical(&self) -> ScenarioSpec {
        self.canonical.clone()
    }
    fn run_on(&self, spec: &ScenarioSpec, backend: &dyn Backend) -> Outcome {
        (self.run)(spec, backend)
    }
}

/// Why a spec could not be run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// No family registered under the key.
    UnknownFamily(String),
    /// An [`AdversaryMix::CrashAt`] names a party outside `0..n`.
    PartyOutOfRange {
        /// The family key.
        family: &'static str,
        /// The offending party id.
        party: PartyId,
        /// Parties in the spec.
        n: usize,
    },
    /// The `(n, f)` shape is outside the family's resilience band.
    Inadmissible {
        /// The family key.
        family: &'static str,
        /// Requested parties.
        n: usize,
        /// Requested fault budget.
        f: usize,
        /// The band that rejected the shape.
        band: &'static str,
    },
    /// The shape is not a valid [`Config`] at all.
    Config(ConfigError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownFamily(k) => write!(out, "no scenario family {k:?} registered"),
            ScenarioError::PartyOutOfRange { family, party, n } => {
                write!(out, "{family}: CrashAt party {party} outside 0..{n}")
            }
            ScenarioError::Inadmissible { family, n, f, band } => {
                write!(
                    out,
                    "{family}: (n={n}, f={f}) outside resilience band {band}"
                )
            }
            ScenarioError::Config(e) => write!(out, "invalid shape: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The scenario registry: family key → [`ScenarioFamily`].
///
/// Keys iterate in sorted order so every registry-driven enumeration
/// (tables, sweeps, property suites) is deterministic.
#[derive(Default)]
pub struct ScenarioRegistry {
    families: BTreeMap<&'static str, Box<dyn ScenarioFamily>>,
}

impl fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("families", &self.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a family.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key — two crates claiming one key is a wiring
    /// bug worth failing loudly on.
    pub fn register(&mut self, family: impl ScenarioFamily + 'static) {
        let key = family.key();
        assert!(
            self.families.insert(key, Box::new(family)).is_none(),
            "scenario family {key:?} registered twice"
        );
    }

    /// Registers a family from its parts — the common one-call path.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key.
    pub fn register_fn<F>(
        &mut self,
        key: &'static str,
        describe: &'static str,
        admission: Admission,
        validity: ValidityMode,
        canonical: ScenarioSpec,
        run: F,
    ) where
        F: Fn(&ScenarioSpec, &dyn Backend) -> Outcome + Send + Sync + 'static,
    {
        self.register(FnFamily {
            key,
            describe,
            admission,
            validity,
            canonical,
            run,
        });
    }

    /// The family registered under `key`.
    pub fn family(&self, key: &str) -> Option<&dyn ScenarioFamily> {
        self.families.get(key).map(Box::as_ref)
    }

    /// All registered keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.families.keys().copied()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The canonical spec of the family registered under `key`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownFamily`] if nothing is registered.
    pub fn spec(&self, key: &str) -> Result<ScenarioSpec, ScenarioError> {
        self.family(key)
            .map(ScenarioFamily::canonical)
            .ok_or_else(|| ScenarioError::UnknownFamily(key.to_string()))
    }

    /// Validates `spec` against its family's band without running it.
    ///
    /// # Errors
    ///
    /// Unknown family, invalid config, or out-of-band shape.
    pub fn validate(&self, spec: &ScenarioSpec) -> Result<&dyn ScenarioFamily, ScenarioError> {
        let family = self
            .family(spec.family)
            .ok_or_else(|| ScenarioError::UnknownFamily(spec.family.to_string()))?;
        spec.config().map_err(ScenarioError::Config)?;
        if let AdversaryMix::CrashAt { party, .. } = spec.adversary {
            if party.as_usize() >= spec.n {
                return Err(ScenarioError::PartyOutOfRange {
                    family: family.key(),
                    party,
                    n: spec.n,
                });
            }
        }
        if !family.admission().admits(spec.n, spec.f) {
            return Err(ScenarioError::Inadmissible {
                family: family.key(),
                n: spec.n,
                f: spec.f,
                band: family.admission().describe(),
            });
        }
        Ok(family)
    }

    /// Runs one spec end to end on the inline simulator.
    ///
    /// # Errors
    ///
    /// Everything [`ScenarioRegistry::validate`] rejects.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<Outcome, ScenarioError> {
        Ok(self.validate(spec)?.run(spec))
    }

    /// Runs one spec end to end on an arbitrary execution [`Backend`] —
    /// the same validation, the same family registration, a different
    /// execution target (e.g. `gcl_net`'s wall-clock thread runtime).
    ///
    /// # Errors
    ///
    /// Everything [`ScenarioRegistry::validate`] rejects.
    pub fn run_on(
        &self,
        spec: &ScenarioSpec,
        backend: &dyn Backend,
    ) -> Result<Outcome, ScenarioError> {
        Ok(self.validate(spec)?.run_on(spec, backend))
    }
}

/// Derives the seed for grid cell `index` from a sweep-level base seed
/// (SplitMix64 of the pair, so neighboring cells get unrelated streams).
pub fn derive_cell_seed(base: u64, index: u64) -> u64 {
    mix_seed(base ^ mix_seed(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;

    struct Flood {
        input: Option<Value>,
    }
    impl Protocol for Flood {
        type Msg = Value;
        fn start(&mut self, ctx: &mut dyn Context<Value>) {
            if let Some(v) = self.input {
                ctx.multicast(v);
            }
        }
        fn on_message(&mut self, _from: PartyId, v: Value, ctx: &mut dyn Context<Value>) {
            ctx.commit(v);
            ctx.terminate();
        }
    }

    fn test_registry() -> ScenarioRegistry {
        let mut reg = ScenarioRegistry::new();
        reg.register_fn(
            "flood",
            "one-round flood",
            Admission::Any,
            ValidityMode::Broadcast,
            ScenarioSpec::lockstep("flood", 4, 1, Duration::from_micros(10)),
            |spec, backend| {
                spec.run_protocol_on(backend, |p| Flood {
                    input: spec.input_for(p),
                })
            },
        );
        reg
    }

    #[test]
    fn registry_runs_canonical_spec() {
        let reg = test_registry();
        let spec = reg.spec("flood").unwrap();
        let o = reg.run(&spec).unwrap();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(42)));
        assert!(reg.family("flood").unwrap().upholds_validity(&spec, &o));
    }

    #[test]
    fn unknown_family_and_bad_shapes_reported() {
        let reg = test_registry();
        assert!(matches!(
            reg.run(&ScenarioSpec::asynchronous("nope", 4, 1)),
            Err(ScenarioError::UnknownFamily(_))
        ));
        let bad = reg.spec("flood").unwrap().with_shape(1, 0);
        assert!(matches!(reg.run(&bad), Err(ScenarioError::Config(_))));
    }

    #[test]
    fn admission_bands() {
        assert!(Admission::Brb.admits(4, 1));
        assert!(!Admission::Brb.admits(4, 2));
        assert!(Admission::TwoRoundPsync.admits(4, 1));
        assert!(Admission::TwoRoundPsync.admits(9, 2));
        assert!(!Admission::TwoRoundPsync.admits(7, 2));
        assert!(Admission::ExactThird.admits(6, 2));
        assert!(!Admission::ExactThird.admits(7, 2));
        assert!(Admission::ThirdToHalf.admits(5, 2));
        assert!(!Admission::ThirdToHalf.admits(6, 3));
        assert!(Admission::Majority.admits(6, 3));
        assert!(Admission::Majority.admits(10, 8));
        assert!(!Admission::Majority.admits(10, 10), "f < n always");
        assert!(Admission::Any.admits(2, 0));
    }

    #[test]
    fn inadmissible_shape_rejected_with_band() {
        let mut reg = ScenarioRegistry::new();
        reg.register_fn(
            "brbish",
            "",
            Admission::Brb,
            ValidityMode::Broadcast,
            ScenarioSpec::asynchronous("brbish", 4, 1),
            |spec, backend| {
                spec.run_protocol_on(backend, |p| Flood {
                    input: spec.input_for(p),
                })
            },
        );
        let err = reg
            .run(&ScenarioSpec::asynchronous("brbish", 4, 2))
            .unwrap_err();
        assert!(err.to_string().contains("n >= 3f+1"), "{err}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_key_panics() {
        let mut reg = test_registry();
        reg.register_fn(
            "flood",
            "",
            Admission::Any,
            ValidityMode::Broadcast,
            ScenarioSpec::asynchronous("flood", 4, 1),
            |spec, backend| {
                spec.run_protocol_on(backend, |p| Flood {
                    input: spec.input_for(p),
                })
            },
        );
    }

    #[test]
    fn adversary_subsets_deterministic_and_clamped() {
        let spec = ScenarioSpec::asynchronous("x", 10, 3)
            .with_adversary(AdversaryMix::RandomSilent { count: 99 })
            .with_seed(7);
        let a = spec.adversary_slots();
        let b = spec.adversary_slots();
        assert_eq!(a, b, "same seed, same subset");
        assert_eq!(a.len(), 3, "clamped to f");
        let mut ids: Vec<u32> = a.iter().map(|(p, _)| p.index()).collect();
        let sorted = ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, sorted, "ascending installation order");
        let other = spec.with_seed(8).adversary_slots();
        assert_ne!(a, other, "different seed moves the subset");
    }

    #[test]
    fn leader_cascade_crashes_successive_leaders_staggered() {
        let spec =
            ScenarioSpec::asynchronous("x", 9, 2).with_adversary(AdversaryMix::LeaderCascade {
                count: 5,
                first_handled: 10,
                stagger: 20,
            });
        let slots = spec.adversary_slots();
        assert_eq!(slots.len(), 2, "cascade length is clamped to f");
        assert_eq!(
            slots[0],
            (PartyId::new(0), AdversaryRole::Crash { handled: 10 })
        );
        assert_eq!(
            slots[1],
            (PartyId::new(1), AdversaryRole::Crash { handled: 30 }),
            "each successive leader survives `stagger` more events"
        );
        assert!(spec.label().ends_with("/crash-cascade"), "{}", spec.label());
    }

    #[test]
    fn trailing_silent_matches_legacy_layout() {
        let spec = ScenarioSpec::lockstep("x", 6, 4, Duration::from_micros(1_000))
            .with_adversary(AdversaryMix::TrailingSilent { count: u32::MAX });
        let slots = spec.adversary_slots();
        let ids: Vec<u32> = slots.iter().map(|(p, _)| p.index()).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
        assert!(slots.iter().all(|(_, r)| *r == AdversaryRole::Silent));
    }

    #[test]
    fn crashing_mix_draws_budgets() {
        let spec = ScenarioSpec::asynchronous("x", 7, 2)
            .with_adversary(AdversaryMix::RandomCrashing {
                count: 2,
                max_handled: 9,
            })
            .with_seed(3);
        for (_, role) in spec.adversary_slots() {
            match role {
                AdversaryRole::Crash { handled } => assert!(handled <= 9),
                AdversaryRole::Silent => panic!("crash mix produced silent role"),
            }
        }
    }

    #[test]
    fn random_skew_spares_broadcaster_and_respects_max() {
        let spec = ScenarioSpec::synchronous("x", 6, 1)
            .with_skew(SkewChoice::Random {
                max: Duration::from_micros(40),
            })
            .with_seed(11);
        let sched = spec.skew_schedule();
        assert_eq!(sched.start_of(PartyId::new(0)), GlobalTime::ZERO);
        assert!(sched.max_skew() <= Duration::from_micros(40));
        let again = spec.skew_schedule();
        for i in 0..6 {
            assert_eq!(
                sched.start_of(PartyId::new(i)),
                again.start_of(PartyId::new(i))
            );
        }
    }

    #[test]
    fn run_protocol_installs_crash_at() {
        let reg = test_registry();
        let spec = reg
            .spec("flood")
            .unwrap()
            .with_adversary(AdversaryMix::CrashAt {
                party: PartyId::new(0),
                handled: 0,
            });
        let o = reg.run(&spec).unwrap();
        // Broadcaster crashed before sending: nobody commits, slot 0 is
        // marked Byzantine.
        assert!(!o.is_honest(PartyId::new(0)));
        assert!(o.commits().is_empty());
        assert!(reg.family("flood").unwrap().upholds_validity(&spec, &o));
    }

    #[test]
    fn crash_at_out_of_range_party_rejected_not_panicking() {
        let reg = test_registry();
        let spec = reg
            .spec("flood")
            .unwrap()
            .with_adversary(AdversaryMix::CrashAt {
                party: PartyId::new(10),
                handled: 0,
            });
        let err = reg.run(&spec).unwrap_err();
        assert!(
            matches!(err, ScenarioError::PartyOutOfRange { n: 4, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("outside 0..4"), "{err}");
    }

    #[test]
    fn labels_are_stable_and_informative() {
        let spec = ScenarioSpec::synchronous("bb", 5, 2)
            .with_seed(9)
            .with_adversary(AdversaryMix::RandomSilent { count: 1 })
            .with_skew(SkewChoice::OddHalfDelta);
        assert_eq!(spec.label(), "bb/n5f2/s9/silent-rand/skew");
    }

    #[test]
    fn link_delays_fixed_puts_delta_off_diagonal() {
        let spec = ScenarioSpec::synchronous("x", 3, 1);
        let links = spec.link_delays();
        assert_eq!(links.len(), 9);
        for from in 0..3 {
            for to in 0..3 {
                let expect = if from == to {
                    Duration::ZERO
                } else {
                    spec.delta
                };
                assert_eq!(links[from * 3 + to], expect, "({from}, {to})");
            }
        }
    }

    #[test]
    fn link_delays_uniform_seeded_and_clamped() {
        let spec = ScenarioSpec::synchronous("x", 4, 1)
            .with_delays(DelayChoice::Uniform {
                lo: Duration::ZERO,
                hi: Duration::from_micros(10_000),
            })
            .with_seed(5);
        let a = spec.link_delays();
        let b = spec.link_delays();
        assert_eq!(a, b, "same seed, same matrix");
        assert!(
            a.iter().all(|d| *d <= spec.delta),
            "synchrony clamps honest links to delta"
        );
        // Under asynchrony the draw is unclamped and seed-sensitive.
        let wide = ScenarioSpec::asynchronous("x", 4, 1).with_delays(DelayChoice::Uniform {
            lo: Duration::from_micros(5_000),
            hi: Duration::from_micros(10_000),
        });
        let unclamped = wide.link_delays();
        assert!(unclamped
            .iter()
            .enumerate()
            .all(|(i, d)| (i % 5 == 0) || *d >= Duration::from_micros(5_000)));
        assert_ne!(
            unclamped,
            wide.with_seed(6).link_delays(),
            "different seed moves the draws"
        );
    }

    #[test]
    fn erased_slots_mirror_adversary_placement() {
        let spec = ScenarioSpec::asynchronous("x", 5, 2)
            .with_adversary(AdversaryMix::TrailingSilent { count: 2 });
        let slots = spec.erased_slots(|p| Flood {
            input: spec.input_for(p),
        });
        assert_eq!(slots.len(), 5);
        let honesty: Vec<bool> = slots.iter().map(|s| s.honest).collect();
        assert_eq!(honesty, vec![true, true, true, false, false]);
    }

    #[test]
    fn derived_cell_seeds_spread() {
        let a = derive_cell_seed(1, 0);
        let b = derive_cell_seed(1, 1);
        let c = derive_cell_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_cell_seed(1, 0));
    }
}
