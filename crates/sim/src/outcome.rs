//! Execution outcomes and the latency metrics of the paper.

use crate::event::TraceEntry;
use gcl_types::{Config, Duration, GlobalTime, LocalTime, PartyId, Value};

/// One party's (first) commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committing party.
    pub party: PartyId,
    /// The committed value.
    pub value: Value,
    /// Global instant of the commit.
    pub global: GlobalTime,
    /// The party's local clock at the commit.
    pub local: LocalTime,
    /// Causal message depth at the commit (1 + max round tag delivered to
    /// this party) — an upper bound on the commit's asynchronous round.
    pub round: u32,
    /// The runner's step index of the commit (for the Definition-10 round
    /// computation in [`Outcome::good_case_rounds`]).
    pub step: u64,
}

/// Execution-scheduler counters reported by backends that multiplex many
/// parties over a fixed pool of OS threads (the readiness-loop backend).
/// Backends with one thread per party — and the simulator, which has no
/// scheduler at all — report `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedCounters {
    /// Size of the worker pool the run's parties were multiplexed over.
    pub workers: usize,
    /// Readiness-poll wakeups summed over the scheduler and all workers.
    pub wakeups: u64,
    /// High-water mark, in bytes, of any single outbound frame queue —
    /// the backpressure metric (a queue that keeps growing means a peer
    /// reads slower than the run writes).
    pub peak_outbound_bytes: usize,
}

/// Everything observable after a simulation run.
#[derive(Debug)]
pub struct Outcome {
    pub(crate) config: Config,
    pub(crate) honest: Vec<bool>,
    pub(crate) commits: Vec<CommitRecord>,
    pub(crate) terminated: Vec<bool>,
    pub(crate) broadcaster: PartyId,
    pub(crate) broadcaster_start: GlobalTime,
    pub(crate) end_time: GlobalTime,
    pub(crate) events_processed: u64,
    pub(crate) messages_sent: u64,
    pub(crate) peak_queue_depth: usize,
    pub(crate) drops_at_enqueue: u64,
    pub(crate) queue_bytes: u64,
    pub(crate) sched: Option<SchedCounters>,
    /// `last_delivery_of_round[k]` = the latest instant at which a message
    /// tagged round `k` is (scheduled to be) delivered — Definition 10's
    /// `l_{k+1}` boundary.
    pub(crate) last_delivery_of_round: Vec<GlobalTime>,
    pub(crate) trace: Vec<TraceEntry>,
}

/// The raw observations a non-simulator execution backend assembles into
/// an [`Outcome`] (via `Outcome::from`). The simulator fills its outcomes
/// in directly; wall-clock backends like `gcl_net` measure these on real
/// clocks. Round-boundary bookkeeping (`last_delivery_of_round`) and
/// traces are simulator-only and start empty.
#[derive(Debug, Clone)]
pub struct OutcomeParts {
    /// The run's `(n, f)` configuration.
    pub config: Config,
    /// Per-slot honesty flags.
    pub honest: Vec<bool>,
    /// First commit per party (at most one record per slot).
    pub commits: Vec<CommitRecord>,
    /// Per-slot termination flags.
    pub terminated: Vec<bool>,
    /// The designated broadcaster.
    pub broadcaster: PartyId,
    /// The broadcaster's (nominal) protocol start instant.
    pub broadcaster_start: GlobalTime,
    /// When the run ended.
    pub end_time: GlobalTime,
    /// Handler invocations across all parties.
    pub events_processed: u64,
    /// Point-to-point messages sent (multicast counts `n`).
    pub messages_sent: u64,
    /// High-water mark of in-flight scheduled events.
    pub peak_queue_depth: usize,
    /// Sends discarded at enqueue because the recipient had already
    /// terminated (simulator-only; wall backends report 0 — their dead
    /// peers' sockets absorb traffic on the wire instead).
    pub drops_at_enqueue: u64,
    /// Bytes of event-queue capacity retained at the end of the run
    /// (simulator-only; wall backends report 0).
    pub queue_bytes: u64,
    /// Worker-pool scheduler counters, for backends that have one
    /// (`None` everywhere else).
    pub sched: Option<SchedCounters>,
}

impl From<OutcomeParts> for Outcome {
    fn from(parts: OutcomeParts) -> Outcome {
        Outcome {
            config: parts.config,
            honest: parts.honest,
            commits: parts.commits,
            terminated: parts.terminated,
            broadcaster: parts.broadcaster,
            broadcaster_start: parts.broadcaster_start,
            end_time: parts.end_time,
            events_processed: parts.events_processed,
            messages_sent: parts.messages_sent,
            peak_queue_depth: parts.peak_queue_depth,
            drops_at_enqueue: parts.drops_at_enqueue,
            queue_bytes: parts.queue_bytes,
            sched: parts.sched,
            last_delivery_of_round: Vec::new(),
            trace: Vec::new(),
        }
    }
}

impl Outcome {
    /// The run's `(n, f)` configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Whether slot `p` ran honest code.
    pub fn is_honest(&self, p: PartyId) -> bool {
        self.honest[p.as_usize()]
    }

    /// All recorded commits (honest and Byzantine slots).
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// Commits by honest parties only — the subject of every property in
    /// the paper.
    pub fn honest_commits(&self) -> impl Iterator<Item = &CommitRecord> + '_ {
        self.commits
            .iter()
            .filter(move |c| self.honest[c.party.as_usize()])
    }

    /// The commit record of one party, if it committed.
    pub fn commit_of(&self, p: PartyId) -> Option<&CommitRecord> {
        self.commits.iter().find(|c| c.party == p)
    }

    /// **Agreement** (Definition 2): no two honest parties committed
    /// different values.
    pub fn agreement_holds(&self) -> bool {
        let mut first: Option<Value> = None;
        for c in self.honest_commits() {
            match first {
                None => first = Some(c.value),
                Some(v) if v != c.value => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// The common honest committed value, if agreement holds and at least
    /// one honest party committed.
    pub fn committed_value(&self) -> Option<Value> {
        if !self.agreement_holds() {
            return None;
        }
        self.honest_commits().next().map(|c| c.value)
    }

    /// Whether every honest party committed.
    pub fn all_honest_committed(&self) -> bool {
        self.config
            .parties()
            .filter(|p| self.honest[p.as_usize()])
            .all(|p| self.commit_of(p).is_some())
    }

    /// Whether every honest party terminated.
    pub fn all_honest_terminated(&self) -> bool {
        self.config
            .parties()
            .filter(|p| self.honest[p.as_usize()])
            .all(|p| self.terminated[p.as_usize()])
    }

    /// **Validity** check: every honest party committed exactly `expected`.
    pub fn validity_holds(&self, expected: Value) -> bool {
        self.all_honest_committed() && self.honest_commits().all(|c| c.value == expected)
    }

    /// **Good-case latency** (Definition 6): time from the broadcaster's
    /// protocol start until the *last* honest commit. `None` if some honest
    /// party never committed.
    pub fn good_case_latency(&self) -> Option<Duration> {
        if !self.all_honest_committed() {
            return None;
        }
        self.honest_commits()
            .map(|c| c.global.since(self.broadcaster_start))
            .max()
    }

    /// Latency until the *first* honest commit (for diagnostics).
    pub fn first_commit_latency(&self) -> Option<Duration> {
        self.honest_commits()
            .map(|c| c.global.since(self.broadcaster_start))
            .min()
    }

    /// The asynchronous round (Definition 10) of one commit: rounds are
    /// delimited by `l_r`, the latest delivery of a round-`(r−1)`-tagged
    /// message; a commit at instant `t` is in the smallest round `r` with
    /// `t ≤ l_r` (monotone closure of the `l_r` sequence).
    ///
    /// Messages are tagged with their causal depth, which equals the
    /// sending step's Definition-10 round whenever deliveries complete in
    /// tag order — true for every canonical (uniform-delay) benchmark
    /// schedule, where this metric is exact. Under adversarially reordered
    /// schedules the causal tag can exceed the official round, making this
    /// an upper-bound approximation.
    pub fn round_of_commit(&self, c: &CommitRecord) -> u32 {
        let mut horizon = GlobalTime::ZERO;
        for (k, &l) in self.last_delivery_of_round.iter().enumerate() {
            horizon = horizon.max(l);
            if c.global <= horizon {
                return k as u32 + 1;
            }
        }
        if self.last_delivery_of_round.is_empty() {
            // No round-boundary table: either a simulated run with no
            // traffic at all (the commit's causal tag is 0 there too), or
            // an outcome assembled by a non-simulator backend — fall back
            // to the causal round tag recorded at the commit, so round
            // metrics stay meaningful (as an upper bound) across backends.
            c.round
        } else {
            // Committed after every delivery (e.g. on a pure timer tail).
            self.last_delivery_of_round.len() as u32
        }
    }

    /// **Good-case round latency** (Definitions 8 and 10): the largest
    /// asynchronous round in which an honest party committed.
    pub fn good_case_rounds(&self) -> Option<u32> {
        if !self.all_honest_committed() {
            return None;
        }
        self.honest_commits().map(|c| self.round_of_commit(c)).max()
    }

    /// The designated broadcaster of the run.
    pub fn broadcaster(&self) -> PartyId {
        self.broadcaster
    }

    /// Global instant at which the last event was processed.
    pub fn end_time(&self) -> GlobalTime {
        self.end_time
    }

    /// Number of events the runner processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of point-to-point messages sent (multicast counts `n`).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// High-water mark of the event queue over the run — how many events
    /// were simultaneously in flight at the worst instant (a capacity-
    /// planning metric: queue memory scales with this, not with
    /// [`Outcome::events_processed`]).
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Point-to-point sends discarded at enqueue time because the
    /// recipient had already terminated. These messages *were* sent (they
    /// count in [`Outcome::messages_sent`] and in the round-boundary
    /// bookkeeping) but never touched the event queue — with drops off
    /// (see `SimulationBuilder::drop_dead_sends`) each would have been
    /// parked, and those popped before the run's end counted as events.
    pub fn drops_at_enqueue(&self) -> u64 {
        self.drops_at_enqueue
    }

    /// Bytes of event-queue capacity retained at the end of the run —
    /// slab chunks, calendar-slot directories and the far-future spill.
    /// The queue's actual memory footprint, as opposed to
    /// [`Outcome::peak_queue_depth`]'s entry count. Simulator-only; wall
    /// backends report 0.
    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes
    }

    /// Worker-pool scheduler counters — `Some` only for backends that
    /// multiplex parties over a fixed worker pool (see [`SchedCounters`]).
    pub fn sched_counters(&self) -> Option<SchedCounters> {
        self.sched
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Asserts agreement with a readable panic message (test helper).
    ///
    /// # Panics
    ///
    /// Panics when two honest parties committed different values.
    pub fn assert_agreement(&self) {
        if !self.agreement_holds() {
            let commits: Vec<String> = self
                .honest_commits()
                .map(|c| format!("{} -> {}", c.party, c.value))
                .collect();
            panic!("agreement violated: {}", commits.join(", "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(commits: Vec<CommitRecord>, honest: Vec<bool>) -> Outcome {
        let n = honest.len();
        Outcome {
            config: Config::new(n, 1).unwrap(),
            honest,
            commits,
            terminated: vec![true; n],
            broadcaster: PartyId::new(0),
            broadcaster_start: GlobalTime::ZERO,
            end_time: GlobalTime::from_micros(100),
            events_processed: 1,
            messages_sent: 0,
            peak_queue_depth: 0,
            drops_at_enqueue: 0,
            queue_bytes: 0,
            sched: None,
            last_delivery_of_round: vec![GlobalTime::from_micros(10), GlobalTime::from_micros(100)],
            trace: Vec::new(),
        }
    }

    fn commit(p: u32, v: u64, at: u64, round: u32) -> CommitRecord {
        CommitRecord {
            party: PartyId::new(p),
            value: Value::new(v),
            global: GlobalTime::from_micros(at),
            local: LocalTime::from_micros(at),
            round,
            step: u64::from(round) + 1,
        }
    }

    #[test]
    fn agreement_on_matching_values() {
        let o = outcome_with(
            vec![
                commit(0, 5, 10, 2),
                commit(1, 5, 12, 2),
                commit(2, 5, 11, 2),
            ],
            vec![true; 3],
        );
        assert!(o.agreement_holds());
        assert_eq!(o.committed_value(), Some(Value::new(5)));
        o.assert_agreement();
    }

    #[test]
    fn agreement_violation_detected() {
        let o = outcome_with(
            vec![commit(0, 5, 10, 2), commit(1, 6, 12, 2)],
            vec![true, true, true],
        );
        assert!(!o.agreement_holds());
        assert_eq!(o.committed_value(), None);
    }

    #[test]
    fn byzantine_commits_ignored() {
        let o = outcome_with(
            vec![commit(0, 5, 10, 2), commit(1, 9, 12, 2)],
            vec![true, false, true],
        );
        assert!(
            o.agreement_holds(),
            "Byzantine slot's commit is not counted"
        );
        assert!(!o.all_honest_committed(), "party 2 never committed");
        assert!(!o.validity_holds(Value::new(5)));
    }

    #[test]
    fn latency_is_max_honest_commit() {
        let o = outcome_with(
            vec![
                commit(0, 5, 10, 1),
                commit(1, 5, 30, 2),
                commit(2, 5, 20, 2),
            ],
            vec![true; 3],
        );
        assert_eq!(o.good_case_latency(), Some(Duration::from_micros(30)));
        assert_eq!(o.first_commit_latency(), Some(Duration::from_micros(10)));
        assert_eq!(o.good_case_rounds(), Some(2));
    }

    #[test]
    fn latency_none_when_incomplete() {
        let o = outcome_with(vec![commit(0, 5, 10, 1)], vec![true; 3]);
        assert_eq!(o.good_case_latency(), None);
        assert_eq!(o.good_case_rounds(), None);
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn assert_agreement_panics() {
        let o = outcome_with(
            vec![commit(0, 5, 10, 2), commit(1, 6, 12, 2)],
            vec![true, true, true],
        );
        o.assert_agreement();
    }

    #[test]
    fn accessors() {
        let o = outcome_with(vec![commit(1, 5, 10, 2)], vec![true; 3]);
        assert_eq!(o.broadcaster(), PartyId::new(0));
        assert!(o.is_honest(PartyId::new(1)));
        assert_eq!(o.commit_of(PartyId::new(1)).unwrap().value, Value::new(5));
        assert!(o.commit_of(PartyId::new(2)).is_none());
        assert_eq!(o.end_time(), GlobalTime::from_micros(100));
        assert_eq!(o.events_processed(), 1);
        assert_eq!(o.messages_sent(), 0);
        assert_eq!(o.peak_queue_depth(), 0);
        assert!(o.trace().is_empty());
        assert!(o.all_honest_terminated());
        assert_eq!(o.commits().len(), 1);
        assert_eq!(o.config().n(), 3);
    }
}
