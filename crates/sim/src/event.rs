//! The event queue: a deterministic priority queue over global time.
//!
//! Internally the queue buckets events by their (discrete, microsecond)
//! delivery instant: a `BTreeMap` from time to a FIFO of events. Simulated
//! workloads concentrate huge fan-outs on few distinct instants (an n-way
//! multicast under a fixed delay lands on *one*), so pushes and pops touch
//! a tree of a handful of nodes instead of sifting through a binary heap of
//! every in-flight message. Drained buckets are recycled through a small
//! spare pool, so the steady-state hot loop allocates nothing.
//!
//! Message payloads are stored as `Rc<M>`: an n-way multicast enqueues one
//! allocation plus `n` reference bumps instead of `n` deep clones, and the
//! payload is shared — not duplicated — while it sits in flight.

use gcl_types::{GlobalTime, PartyId, Value};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// The shared-payload pointer of the delivery path. The event loop is
/// strictly single-threaded (handlers run inline, one at a time), so a
/// non-atomic `Rc` shares a multicast payload without paying three atomic
/// RMWs per delivered message; swap for `Arc` if the loop is ever sharded
/// across threads.
pub(crate) type Shared<M> = Rc<M>;

/// A delivery payload. Multicasts share one reference-counted allocation
/// across all `n` in-flight copies; unicasts and self-deliveries pay one
/// boxing allocation. Both variants are pointer-sized, which keeps queue
/// entries small: an n-way multicast under load parks tens of thousands of
/// events at once, and entry size — not push arithmetic — dominates the
/// queue's cache traffic.
pub(crate) enum Payload<M> {
    /// The sole in-flight copy (unicast / self-delivery).
    Owned(Box<M>),
    /// One of the in-flight copies of a multicast.
    Multicast(Shared<M>),
}

impl<M> Payload<M> {
    /// Borrows the message (for the oracle's [`crate::MsgEnvelope`] and
    /// trace rendering).
    pub fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Multicast(rc) => rc,
        }
    }
}

impl<M: Clone> Payload<M> {
    /// By-value extraction for dispatch: inline payloads move out, the
    /// last in-flight copy of a multicast unwraps for free, earlier ones
    /// clone lazily — a dropped or clamped-away message is never cloned.
    pub fn into_msg(self) -> M {
        match self {
            Payload::Owned(m) => *m,
            Payload::Multicast(rc) => Shared::try_unwrap(rc).unwrap_or_else(|s| (*s).clone()),
        }
    }
}

// Renders as the message itself (no `Owned`/`Multicast` wrapper), so trace
// entries are independent of how the payload happened to be routed.
impl<M: std::fmt::Debug> std::fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Party starts its protocol (local clock begins).
    Start(PartyId),
    /// Message delivery. See [`Payload`] for the sharing contract.
    Deliver {
        to: PartyId,
        from: PartyId,
        msg: Payload<M>,
        /// Asynchronous-round tag (causal depth) of the message.
        round: u32,
    },
    /// Timer expiry.
    Timer { party: PartyId, tag: u64 },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: GlobalTime,
    pub kind: EventKind<M>,
}

/// Retired buckets kept for reuse; bounds how much drained capacity the
/// queue retains, not how many buckets can be live at once.
const SPARE_BUCKETS: usize = 64;

/// Deterministic event queue: pops in `(time, push order)` order.
pub(crate) struct EventQueue<M> {
    buckets: BTreeMap<GlobalTime, VecDeque<EventKind<M>>>,
    spare: Vec<VecDeque<EventKind<M>>>,
    len: usize,
    peak: usize,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            buckets: BTreeMap::new(),
            spare: Vec::new(),
            len: 0,
            peak: 0,
        }
    }

    pub fn push(&mut self, at: GlobalTime, kind: EventKind<M>) {
        let spare = &mut self.spare;
        self.buckets
            .entry(at)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push_back(kind);
        self.len += 1;
        self.peak = self.peak.max(self.len());
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        let mut entry = self.buckets.first_entry()?;
        let at = *entry.key();
        let kind = entry.get_mut().pop_front().expect("buckets are non-empty");
        if entry.get().is_empty() {
            let bucket = entry.remove();
            if self.spare.len() < SPARE_BUCKETS {
                self.spare.push(bucket);
            }
        }
        self.len -= 1;
        Some(Event { at, kind })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime —
    /// the capacity-planning metric surfaced as
    /// [`Outcome::peak_queue_depth`](crate::Outcome::peak_queue_depth).
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// One entry of an execution trace (enabled via
/// [`SimulationBuilder::record_trace`](crate::SimulationBuilder::record_trace)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// A party started.
    Started {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
    },
    /// A message was delivered.
    Delivered {
        /// When (global clock).
        at: GlobalTime,
        /// Sender.
        from: PartyId,
        /// Recipient.
        to: PartyId,
        /// Async-round tag of the message.
        round: u32,
        /// `Debug` rendering of the message.
        msg: String,
    },
    /// A timer fired.
    TimerFired {
        /// When (global clock).
        at: GlobalTime,
        /// Whose timer.
        party: PartyId,
        /// The tag it was set with.
        tag: u64,
    },
    /// A party committed.
    Committed {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
        /// Committed value.
        value: Value,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            GlobalTime::from_micros(30),
            EventKind::Start(PartyId::new(0)),
        );
        q.push(
            GlobalTime::from_micros(10),
            EventKind::Start(PartyId::new(1)),
        );
        q.push(
            GlobalTime::from_micros(20),
            EventKind::Start(PartyId::new(2)),
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_micros())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_at_equal_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let t = GlobalTime::from_micros(5);
        for i in 0..4 {
            q.push(t, EventKind::Start(PartyId::new(i)));
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Start(p) => p.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3], "ties break in push order");
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        // Refill a partially drained bucket and race it against an earlier
        // instant: pops must still come back in (time, push order).
        let mut q: EventQueue<u8> = EventQueue::new();
        let t5 = GlobalTime::from_micros(5);
        q.push(t5, EventKind::Start(PartyId::new(0)));
        q.push(t5, EventKind::Start(PartyId::new(1)));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Start(p) if p == PartyId::new(0)
        ));
        q.push(
            GlobalTime::from_micros(3),
            EventKind::Start(PartyId::new(2)),
        );
        q.push(t5, EventKind::Start(PartyId::new(3)));
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Start(p) => p.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(GlobalTime::ZERO, EventKind::Start(PartyId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peak_is_high_water_mark() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peak(), 0);
        for i in 0..3 {
            q.push(
                GlobalTime::from_micros(i),
                EventKind::Start(PartyId::new(0)),
            );
        }
        q.pop();
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 3, "peak survives pops");
        q.push(GlobalTime::ZERO, EventKind::Start(PartyId::new(1)));
        assert_eq!(q.peak(), 3, "re-pushing below the peak leaves it");
    }

    #[test]
    fn multicast_payload_is_shared() {
        let mut q: EventQueue<String> = EventQueue::new();
        let payload = Shared::new("big".to_string());
        for i in 0..3 {
            q.push(
                GlobalTime::ZERO,
                EventKind::Deliver {
                    to: PartyId::new(i),
                    from: PartyId::new(9),
                    msg: Payload::Multicast(Shared::clone(&payload)),
                    round: 0,
                },
            );
        }
        assert_eq!(Shared::strong_count(&payload), 4, "one payload, n pointers");
    }

    #[test]
    fn payload_unwraps_or_clones() {
        let owned: Payload<String> = Payload::Owned(Box::new("inline".into()));
        assert_eq!(owned.into_msg(), "inline");
        let rc = Shared::new("shared".to_string());
        let (a, b) = (
            Payload::Multicast(Shared::clone(&rc)),
            Payload::Multicast(Shared::clone(&rc)),
        );
        drop(rc);
        assert_eq!(a.into_msg(), "shared", "clones while still shared");
        assert_eq!(b.into_msg(), "shared", "last copy unwraps");
        let solo: Payload<u8> = Payload::Multicast(Shared::new(7));
        assert_eq!(format!("{solo:?}"), "7", "debug renders the message");
    }
}
