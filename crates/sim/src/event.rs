//! The event queue: a two-tier calendar queue over global time.
//!
//! The old implementation bucketed events in a `BTreeMap<GlobalTime,
//! VecDeque>`; at n = 1024 a flood parks ~1M deliveries and the tree's
//! node churn and pointer chasing — not push arithmetic — dominated the
//! hot loop. This rewrite makes the queue's memory traffic the designed
//! quantity:
//!
//! * **Near tier — a ring of time slots.** 1024 slots of power-of-two
//!   width `2^shift` µs, `shift` derived from the scenario's δ (see
//!   [`EventQueue::with_delta`]), so an n-way multicast under a fixed
//!   delay lands in one slot. A cursor walks the ring monotonically; an
//!   occupancy bitmap finds the next non-empty slot in a few word scans.
//! * **Far tier — a sorted overflow spill.** Events beyond the ring's
//!   horizon (cursor + 1024 slots) go to a `BTreeMap` keyed by raw
//!   microseconds and are bulk-promoted into the ring as the cursor
//!   advances. The invariant "overflow holds only instants at or beyond
//!   the horizon" is restored on every cursor advance, which is what
//!   keeps FIFO-per-instant order intact across the boundary: everything
//!   parked for an instant is promoted *before* any later push for the
//!   same instant can land in the ring.
//! * **A recycling slab with an intrusive free list.** Event envelopes
//!   live in fixed 4096-node chunks (`Vec<Box<[Node]>>`, so growth never
//!   memcpys live events); each bucket entry is a `(time, chain)` pair
//!   whose FIFO chain threads through the nodes' `next` indices. Freed
//!   nodes go on a free list and are reused — the steady state allocates
//!   nothing, and unlike the old spare-`VecDeque` pool the retained
//!   capacity is bounded (drained bucket directories are clamped, see
//!   [`BUCKET_SPARE_ENTRIES`]) and measured ([`EventQueue::retained_bytes`],
//!   surfaced as `Outcome::queue_bytes`).
//!
//! Message payloads are stored as `Rc<M>`: an n-way multicast enqueues one
//! allocation plus `n` reference bumps instead of `n` deep clones, and the
//! payload is shared — not duplicated — while it sits in flight.

use gcl_types::{Duration, GlobalTime, PartyId, Value};
use std::collections::BTreeMap;
use std::rc::Rc;

/// The shared-payload pointer of the delivery path. The event loop is
/// strictly single-threaded (handlers run inline, one at a time), so a
/// non-atomic `Rc` shares a multicast payload without paying three atomic
/// RMWs per delivered message; swap for `Arc` if the loop is ever sharded
/// across threads.
pub(crate) type Shared<M> = Rc<M>;

/// A delivery payload. Multicasts share one reference-counted allocation
/// across all `n` in-flight copies; unicasts and self-deliveries pay one
/// boxing allocation. Both variants are pointer-sized, which keeps queue
/// entries small: an n-way multicast under load parks tens of thousands of
/// events at once, and entry size — not push arithmetic — dominates the
/// queue's cache traffic.
pub(crate) enum Payload<M> {
    /// The sole in-flight copy (unicast / self-delivery).
    Owned(Box<M>),
    /// One of the in-flight copies of a multicast.
    Multicast(Shared<M>),
}

impl<M> Payload<M> {
    /// Borrows the message (for the oracle's [`crate::MsgEnvelope`] and
    /// trace rendering).
    pub fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Multicast(rc) => rc,
        }
    }
}

impl<M: Clone> Payload<M> {
    /// By-value extraction for dispatch: inline payloads move out, the
    /// last in-flight copy of a multicast unwraps for free, earlier ones
    /// clone lazily — a dropped or clamped-away message is never cloned.
    pub fn into_msg(self) -> M {
        match self {
            Payload::Owned(m) => *m,
            Payload::Multicast(rc) => Shared::try_unwrap(rc).unwrap_or_else(|s| (*s).clone()),
        }
    }
}

// Renders as the message itself (no `Owned`/`Multicast` wrapper), so trace
// entries are independent of how the payload happened to be routed.
impl<M: std::fmt::Debug> std::fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Party starts its protocol (local clock begins).
    Start(PartyId),
    /// Message delivery. See [`Payload`] for the sharing contract.
    Deliver {
        to: PartyId,
        from: PartyId,
        msg: Payload<M>,
        /// Asynchronous-round tag (causal depth) of the message.
        round: u32,
    },
    /// Timer expiry.
    Timer { party: PartyId, tag: u64 },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: GlobalTime,
    pub kind: EventKind<M>,
}

/// Ring size: the near tier covers `NUM_SLOTS × 2^shift` µs ahead of the
/// cursor. Power of two so slot→index is a mask, and large enough that a
/// scenario's in-flight horizon (delays, a few protocol timers) fits —
/// only genuinely far-future work (e.g. the asynchrony fallback) spills.
const NUM_SLOTS: usize = 1024;
/// Occupancy-bitmap words (64 slots per word).
const SLOT_WORDS: usize = NUM_SLOTS / 64;
/// Slab chunk size, as a shift: 4096 nodes per chunk. Chunks are never
/// reallocated, so growing the slab never copies parked events.
const CHUNK_SHIFT: u32 = 12;
const CHUNK: usize = 1 << CHUNK_SHIFT;
/// Null slab index (end of chain / empty free list).
const NIL: u32 = u32::MAX;
/// Retained-capacity clamp for a drained slot's bucket directory: a burst
/// that spread events over many distinct instants of one slot would
/// otherwise leave its high-water `Vec` capacity parked forever.
const BUCKET_SPARE_ENTRIES: usize = 8;
/// Widest allowed bucket: 2^20 µs ≈ 1 s per slot.
const MAX_WIDTH_SHIFT: u32 = 20;

/// One slab cell. `kind` is `None` while the node sits on the free list
/// (the `Option` also drops payloads eagerly on release); `next` threads
/// both the per-instant FIFO chains and the free list.
struct Node<M> {
    kind: Option<EventKind<M>>,
    next: u32,
}

/// A FIFO of events at one instant: slab indices of the first and last
/// node, linked through `Node::next`.
#[derive(Clone, Copy)]
struct Chain {
    head: u32,
    tail: u32,
}

/// One ring slot's directory: the instants parked in this slot, ascending,
/// each with its FIFO chain. Under a fixed delay this holds one entry.
type Bucket = Vec<(u64, Chain)>;

/// Deterministic event queue: pops in `(time, push order)` order.
pub(crate) struct EventQueue<M> {
    /// The envelope slab. Indices are `chunk << CHUNK_SHIFT | offset`; the
    /// fixed-size chunk type lets the offset index (`i & (CHUNK - 1)`,
    /// provably in range) compile without a bounds check.
    chunks: Vec<Box<[Node<M>; CHUNK]>>,
    /// Nodes handed out at least once; the tail of the last chunk beyond
    /// this watermark is still virgin.
    spawned: u32,
    /// Intrusive free list of released nodes (LIFO — freshly popped nodes
    /// are reused first, while their lines are still warm).
    free_head: u32,
    /// The near-future ring.
    slots: Vec<Bucket>,
    /// One bit per ring slot: does its bucket hold anything?
    occupied: [u64; SLOT_WORDS],
    /// Bucket width is `2^shift` µs.
    shift: u32,
    /// Logical slot index (`time >> shift`) the pop side is draining.
    /// Monotone: the simulator never pushes before the last popped
    /// instant, and a defensive earlier push lands in the cursor slot.
    cursor: u64,
    /// Far-future spill, keyed by raw microseconds. Invariant (restored on
    /// every cursor advance): holds only instants at or beyond the ring
    /// horizon `(cursor + NUM_SLOTS) << shift`.
    overflow: BTreeMap<u64, Chain>,
    len: usize,
    peak: usize,
}

impl<M> EventQueue<M> {
    /// A queue with the default 1 µs bucket width (the builder's default
    /// delay; [`EventQueue::with_delta`] is the tuned constructor).
    #[allow(dead_code)] // exercised by tests; production code tunes via δ
    pub fn new() -> Self {
        Self::with_delta(Duration::from_micros(1))
    }

    /// A queue whose bucket width is the smallest power of two ≥ δ, so
    /// one fixed-delay multicast — and typically one whole protocol round
    /// — lands in a single slot, and the ring horizon (`1024` buckets)
    /// covers hundreds of rounds before anything spills to the far tier.
    pub fn with_delta(delta: Duration) -> Self {
        let us = delta.as_micros().max(1);
        let shift = if us <= 1 {
            0
        } else {
            (64 - (us - 1).leading_zeros()).min(MAX_WIDTH_SHIFT)
        };
        EventQueue {
            chunks: Vec::new(),
            spawned: 0,
            free_head: NIL,
            slots: (0..NUM_SLOTS).map(|_| Bucket::new()).collect(),
            occupied: [0; SLOT_WORDS],
            shift,
            cursor: 0,
            overflow: BTreeMap::new(),
            len: 0,
            peak: 0,
        }
    }

    #[inline]
    fn node_mut(&mut self, i: u32) -> &mut Node<M> {
        &mut self.chunks[(i >> CHUNK_SHIFT) as usize][(i & (CHUNK as u32 - 1)) as usize]
    }

    /// Takes a node off the free list (or spawns one from the chunk tail)
    /// and fills it. Steady state never reaches the spawn path.
    fn alloc(&mut self, kind: EventKind<M>) -> u32 {
        let i = if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.node_mut(i).next;
            i
        } else {
            let i = self.spawned;
            if i as usize == self.chunks.len() * CHUNK {
                let chunk: Box<[Node<M>]> = (0..CHUNK)
                    .map(|_| Node {
                        kind: None,
                        next: NIL,
                    })
                    .collect();
                let chunk: Box<[Node<M>; CHUNK]> =
                    chunk.try_into().unwrap_or_else(|_| unreachable!());
                self.chunks.push(chunk);
            }
            self.spawned = i + 1;
            i
        };
        let node = self.node_mut(i);
        node.kind = Some(kind);
        node.next = NIL;
        i
    }

    pub fn push(&mut self, at: GlobalTime, kind: EventKind<M>) {
        let t = at.as_micros();
        let i = self.alloc(kind);
        let slot = t >> self.shift;
        if slot >= self.cursor + NUM_SLOTS as u64 {
            // Far tier: beyond the ring horizon.
            match self.overflow.get(&t).copied() {
                Some(chain) => {
                    self.node_mut(chain.tail).next = i;
                    self.overflow.insert(
                        t,
                        Chain {
                            head: chain.head,
                            tail: i,
                        },
                    );
                }
                None => {
                    self.overflow.insert(t, Chain { head: i, tail: i });
                }
            }
        } else {
            // Near tier. A push before the cursor (the simulator never
            // does this; defensive for direct users) lands in the cursor
            // slot — its exact instant still sorts it to the front.
            let logical = slot.max(self.cursor);
            let p = (logical & (NUM_SLOTS as u64 - 1)) as usize;
            self.bucket_insert(p, t, i);
            self.occupied[p >> 6] |= 1 << (p & 63);
        }
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
    }

    /// Appends node `i` (instant `t`) to slot `p`'s directory, keeping the
    /// directory time-sorted. The hot path — everything in the slot at one
    /// instant, pushes in nondecreasing time — is the first two arms.
    fn bucket_insert(&mut self, p: usize, t: u64, i: u32) {
        match self.slots[p].last().copied() {
            Some((bt, chain)) if bt == t => {
                self.node_mut(chain.tail).next = i;
                self.slots[p].last_mut().expect("non-empty").1.tail = i;
            }
            Some((bt, _)) if bt < t => self.slots[p].push((t, Chain { head: i, tail: i })),
            None => self.slots[p].push((t, Chain { head: i, tail: i })),
            Some(_) => {
                // Out-of-order instant within the slot: sorted insert.
                match self.slots[p].binary_search_by_key(&t, |&(bt, _)| bt) {
                    Ok(k) => {
                        let chain = self.slots[p][k].1;
                        self.node_mut(chain.tail).next = i;
                        self.slots[p][k].1.tail = i;
                    }
                    Err(k) => self.slots[p].insert(k, (t, Chain { head: i, tail: i })),
                }
            }
        }
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        if self.len == 0 {
            return None;
        }
        loop {
            let p = (self.cursor & (NUM_SLOTS as u64 - 1)) as usize;
            if let Some(&(t, chain)) = self.slots[p].first() {
                let head = chain.head;
                // One borrow drains the node AND returns it to the free
                // list: read the chain link, take the payload, relink.
                let free = self.free_head;
                let node = self.node_mut(head);
                let next = node.next;
                let kind = node.kind.take().expect("chain node is live");
                node.next = free;
                self.free_head = head;
                if head == chain.tail {
                    // Chain drained: retire this instant's directory entry.
                    self.slots[p].remove(0);
                    if self.slots[p].is_empty() {
                        self.occupied[p >> 6] &= !(1 << (p & 63));
                        if self.slots[p].capacity() > BUCKET_SPARE_ENTRIES {
                            // Bound what a drained burst leaves parked.
                            self.slots[p].shrink_to(BUCKET_SPARE_ENTRIES);
                        }
                    }
                } else {
                    self.slots[p][0].1.head = next;
                }
                self.len -= 1;
                return Some(Event {
                    at: GlobalTime::from_micros(t),
                    kind,
                });
            }
            self.advance();
        }
    }

    /// Moves the cursor to the next slot holding work — the next occupied
    /// ring slot, or (ring empty) the first overflow instant's slot — and
    /// re-establishes the overflow invariant for the new horizon.
    fn advance(&mut self) {
        let logical = match self.next_occupied_slot() {
            Some(s) => s,
            None => {
                let (&t, _) = self
                    .overflow
                    .iter()
                    .next()
                    .expect("len > 0 with empty ring implies overflow work");
                t >> self.shift
            }
        };
        self.cursor = logical;
        self.promote();
    }

    /// The logical index of the nearest occupied slot strictly after the
    /// cursor, scanning the bitmap circularly. The window is exactly
    /// `NUM_SLOTS` wide, so every set bit is unambiguous.
    fn next_occupied_slot(&self) -> Option<u64> {
        let p = (self.cursor & (NUM_SLOTS as u64 - 1)) as usize;
        let start_word = p >> 6;
        let rem = (p & 63) as u32;
        // Bits strictly above the cursor's position in its own word.
        let above = if rem == 63 {
            0
        } else {
            self.occupied[start_word] & (!0u64 << (rem + 1))
        };
        if above != 0 {
            let q = (start_word << 6) + above.trailing_zeros() as usize;
            return Some(self.cursor + (q - p) as u64);
        }
        for step in 1..=SLOT_WORDS {
            let idx = (start_word + step) % SLOT_WORDS;
            let word = self.occupied[idx];
            if word != 0 {
                let q = (idx << 6) + word.trailing_zeros() as usize;
                let d = (q + NUM_SLOTS - p) % NUM_SLOTS;
                debug_assert!(d != 0, "cursor slot was checked empty");
                return Some(self.cursor + d as u64);
            }
        }
        None
    }

    /// Bulk-promotes every overflow instant now inside the ring horizon.
    /// Their target buckets are necessarily empty (the previous window's
    /// occupant of each physical slot was drained before the cursor moved
    /// past it), and `BTreeMap` iteration yields ascending instants, so
    /// appending keeps each directory sorted — and every promoted chain
    /// precedes any *later* ring push for the same instant, preserving
    /// global FIFO-per-instant order.
    fn promote(&mut self) {
        let width = 1u64 << self.shift;
        let horizon_t = (self.cursor + NUM_SLOTS as u64).saturating_mul(width);
        while let Some((&t, _)) = self.overflow.iter().next() {
            if t >= horizon_t {
                break;
            }
            let chain = self.overflow.remove(&t).expect("just observed");
            let p = ((t >> self.shift) & (NUM_SLOTS as u64 - 1)) as usize;
            debug_assert!(
                self.slots[p].last().is_none_or(|&(bt, _)| bt < t),
                "promotion target must stay sorted"
            );
            self.slots[p].push((t, chain));
            self.occupied[p >> 6] |= 1 << (p & 63);
        }
    }

    #[allow(dead_code)] // exercised by tests; the runner tracks its own count
    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime —
    /// the capacity-planning metric surfaced as
    /// [`Outcome::peak_queue_depth`](crate::Outcome::peak_queue_depth).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Bytes of capacity the queue currently retains: slab chunks, the
    /// ring's bucket directories, the occupancy bitmap, and an estimate
    /// for parked overflow entries. This is the queue's cache/memory
    /// footprint — the quantity the calendar layout optimizes — surfaced
    /// as `Outcome::queue_bytes` and benched per scenario.
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        let slab = self.chunks.len() * CHUNK * size_of::<Node<M>>();
        let directories: usize = self
            .slots
            .iter()
            .map(|b| b.capacity() * size_of::<(u64, Chain)>())
            .sum();
        let ring = directories + NUM_SLOTS * size_of::<Bucket>();
        let bitmap = SLOT_WORDS * size_of::<u64>();
        // BTreeMap internals are not observable without allocator hooks;
        // three words of tree overhead per parked instant is a fair bound.
        let overflow = self.overflow.len() * (size_of::<(u64, Chain)>() + 3 * size_of::<u64>());
        slab + ring + bitmap + overflow
    }
}

/// Drives one deterministic mixed near/far push/pop workload through the
/// queue and returns a checksum of the popped instants. This is the
/// `event_queue` microbench's entry point — a measurement hook, not API
/// (hence hidden); it lives here so the bench exercises the real
/// (crate-private) queue instead of a copy.
#[doc(hidden)]
pub fn queue_stress(events: usize, delta_us: u64) -> u64 {
    let delta_us = delta_us.max(1);
    let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(delta_us));
    // SplitMix-style generator: deterministic, no external entropy.
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut step = move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let ring_span = delta_us * NUM_SLOTS as u64;
    let mut now = 0u64;
    let mut pushed = 0usize;
    let mut popped = 0usize;
    let mut sum = 0u64;
    while popped < events {
        // Two pushes per pop while budget lasts, then drain: the queue
        // both grows (multicast burst shape) and cycles its free list.
        if pushed < events && (pushed < 2 * (popped + 1) || popped == pushed) {
            let r = step();
            let delay = if r % 16 == 0 {
                // Far-future: past the ring horizon, exercising the
                // overflow spill and its bulk promotion.
                ring_span + (r >> 8) % (8 * ring_span)
            } else {
                (r >> 8) % (4 * delta_us)
            };
            q.push(
                GlobalTime::from_micros(now + delay),
                EventKind::Timer {
                    party: PartyId::new(0),
                    tag: pushed as u64,
                },
            );
            pushed += 1;
        } else {
            let ev = q.pop().expect("pushed >= popped");
            now = ev.at.as_micros();
            sum = sum.wrapping_mul(31).wrapping_add(now);
            popped += 1;
        }
    }
    sum
}

/// One entry of an execution trace (enabled via
/// [`SimulationBuilder::record_trace`](crate::SimulationBuilder::record_trace)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// A party started.
    Started {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
    },
    /// A message was delivered.
    Delivered {
        /// When (global clock).
        at: GlobalTime,
        /// Sender.
        from: PartyId,
        /// Recipient.
        to: PartyId,
        /// Async-round tag of the message.
        round: u32,
        /// `Debug` rendering of the message.
        msg: String,
    },
    /// A timer fired.
    TimerFired {
        /// When (global clock).
        at: GlobalTime,
        /// Whose timer.
        party: PartyId,
        /// The tag it was set with.
        tag: u64,
    },
    /// A party committed.
    Committed {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
        /// Committed value.
        value: Value,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            GlobalTime::from_micros(30),
            EventKind::Start(PartyId::new(0)),
        );
        q.push(
            GlobalTime::from_micros(10),
            EventKind::Start(PartyId::new(1)),
        );
        q.push(
            GlobalTime::from_micros(20),
            EventKind::Start(PartyId::new(2)),
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_micros())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_at_equal_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let t = GlobalTime::from_micros(5);
        for i in 0..4 {
            q.push(t, EventKind::Start(PartyId::new(i)));
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Start(p) => p.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3], "ties break in push order");
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        // Refill a partially drained bucket and race it against an earlier
        // instant: pops must still come back in (time, push order). The
        // push at 3µs lands *behind* the advanced cursor (5µs was already
        // popped), exercising the defensive cursor-slot fallback.
        let mut q: EventQueue<u8> = EventQueue::new();
        let t5 = GlobalTime::from_micros(5);
        q.push(t5, EventKind::Start(PartyId::new(0)));
        q.push(t5, EventKind::Start(PartyId::new(1)));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Start(p) if p == PartyId::new(0)
        ));
        q.push(
            GlobalTime::from_micros(3),
            EventKind::Start(PartyId::new(2)),
        );
        q.push(t5, EventKind::Start(PartyId::new(3)));
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Start(p) => p.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(GlobalTime::ZERO, EventKind::Start(PartyId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peak_is_high_water_mark() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peak(), 0);
        for i in 0..3 {
            q.push(
                GlobalTime::from_micros(i),
                EventKind::Start(PartyId::new(0)),
            );
        }
        q.pop();
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 3, "peak survives pops");
        q.push(GlobalTime::ZERO, EventKind::Start(PartyId::new(1)));
        assert_eq!(q.peak(), 3, "re-pushing below the peak leaves it");
    }

    #[test]
    fn multicast_payload_is_shared() {
        let mut q: EventQueue<String> = EventQueue::new();
        let payload = Shared::new("big".to_string());
        for i in 0..3 {
            q.push(
                GlobalTime::ZERO,
                EventKind::Deliver {
                    to: PartyId::new(i),
                    from: PartyId::new(9),
                    msg: Payload::Multicast(Shared::clone(&payload)),
                    round: 0,
                },
            );
        }
        assert_eq!(Shared::strong_count(&payload), 4, "one payload, n pointers");
    }

    #[test]
    fn payload_unwraps_or_clones() {
        let owned: Payload<String> = Payload::Owned(Box::new("inline".into()));
        assert_eq!(owned.into_msg(), "inline");
        let rc = Shared::new("shared".to_string());
        let (a, b) = (
            Payload::Multicast(Shared::clone(&rc)),
            Payload::Multicast(Shared::clone(&rc)),
        );
        drop(rc);
        assert_eq!(a.into_msg(), "shared", "clones while still shared");
        assert_eq!(b.into_msg(), "shared", "last copy unwraps");
        let solo: Payload<u8> = Payload::Multicast(Shared::new(7));
        assert_eq!(format!("{solo:?}"), "7", "debug renders the message");
    }

    /// Pops every (time, tag) pair; `tag` carries push order in the tests
    /// below.
    fn drain_tags(q: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Timer { tag, .. } => (e.at.as_micros(), tag),
                _ => unreachable!(),
            })
        })
        .collect()
    }

    fn timer(tag: u64) -> EventKind<u64> {
        EventKind::Timer {
            party: PartyId::new(0),
            tag,
        }
    }

    #[test]
    fn far_future_spills_and_promotes_in_order() {
        // δ = 1µs → 1µs buckets, horizon 1024µs. Park work far past the
        // horizon (overflow), some at the same instant from both tiers.
        let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(1));
        q.push(GlobalTime::from_micros(5_000), timer(0)); // overflow
        q.push(GlobalTime::from_micros(3), timer(1)); // ring
        q.push(GlobalTime::from_micros(9_000), timer(2)); // overflow
        q.push(GlobalTime::from_micros(5_000), timer(3)); // overflow, same t
        assert_eq!(q.pop().unwrap().at.as_micros(), 3);
        // Cursor is now at slot 3; 5_000 is still past the horizon until
        // the ring drains and the cursor jumps to the overflow's slot.
        q.push(GlobalTime::from_micros(900), timer(4));
        let rest = drain_tags(&mut q);
        assert_eq!(
            rest,
            vec![(900, 4), (5_000, 0), (5_000, 3), (9_000, 2)],
            "promotion preserves (time, push-order)"
        );
        assert!(q.overflow.is_empty());
    }

    #[test]
    fn ring_boundary_fifo_across_tiers() {
        // An instant first parked in overflow, then — after the cursor
        // advances enough to promote it — pushed again via the ring: the
        // overflow copy was pushed earlier and must pop first.
        let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(1));
        let t = 2_000u64;
        q.push(GlobalTime::from_micros(t), timer(0)); // overflow (horizon 1024)
        q.push(GlobalTime::from_micros(1_500), timer(1)); // also overflow
        q.push(GlobalTime::from_micros(10), timer(2)); // ring
        assert_eq!(q.pop().unwrap().at.as_micros(), 10);
        // Drain to 1_500: cursor jumps there, promoting 2_000 (now within
        // the new horizon 1_500 + 1024) into the ring.
        assert_eq!(q.pop().unwrap().at.as_micros(), 1_500);
        q.push(GlobalTime::from_micros(t), timer(3)); // ring, same instant
        assert_eq!(drain_tags(&mut q), vec![(t, 0), (t, 3)]);
    }

    #[test]
    fn slab_recycles_instead_of_growing() {
        let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(10));
        // Warm up: park `CHUNK` events, drain them.
        for i in 0..CHUNK as u64 {
            q.push(GlobalTime::from_micros(10 + i % 7), timer(i));
        }
        while q.pop().is_some() {}
        let mut now = 100u64;
        let mut cycle = |q: &mut EventQueue<u64>| {
            // Push-one-pop-one at a 5µs stride: sweeps the whole ring
            // (touching every slot's directory) many times over.
            for i in 0..10 * CHUNK as u64 {
                q.push(GlobalTime::from_micros(now + 5), timer(i));
                now = q.pop().unwrap().at.as_micros();
            }
        };
        cycle(&mut q);
        let chunks = q.chunks.len();
        let bytes = q.retained_bytes();
        cycle(&mut q);
        assert_eq!(q.chunks.len(), chunks, "steady state spawns no chunks");
        assert_eq!(q.retained_bytes(), bytes, "and retains no extra bytes");
    }

    #[test]
    fn drained_bucket_directory_capacity_is_clamped() {
        // δ = 1024µs → one slot spans 1024 distinct instants. Park a burst
        // across many instants of one slot, drain it, and the directory's
        // high-water capacity must be clamped on recycle.
        let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(1024));
        let burst = 10 * BUCKET_SPARE_ENTRIES as u64;
        for i in 0..burst {
            q.push(GlobalTime::from_micros(i), timer(i));
        }
        assert!(
            q.slots[0].capacity() >= burst as usize,
            "burst grows one slot's directory"
        );
        let popped = drain_tags(&mut q);
        assert_eq!(popped.len(), burst as usize);
        assert!(
            q.slots[0].capacity() <= BUCKET_SPARE_ENTRIES,
            "drained directory keeps at most {} entries of capacity, has {}",
            BUCKET_SPARE_ENTRIES,
            q.slots[0].capacity()
        );
    }

    #[test]
    fn retained_bytes_accounts_slab_and_overflow() {
        let mut q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(1));
        let empty = q.retained_bytes();
        assert!(empty > 0, "ring directory itself is accounted");
        q.push(GlobalTime::from_micros(1 << 20), timer(0));
        let parked = q.retained_bytes();
        assert!(
            parked > empty + CHUNK * std::mem::size_of::<Node<u64>>() - 1,
            "first push spawns a slab chunk"
        );
        q.pop();
        assert!(
            q.retained_bytes() >= empty + CHUNK * std::mem::size_of::<Node<u64>>(),
            "slab capacity is retained after the drain"
        );
        assert!(q.overflow.is_empty(), "the overflow entry is gone");
    }

    #[test]
    fn width_derivation_clamps() {
        let q: EventQueue<u64> = EventQueue::with_delta(Duration::ZERO);
        assert_eq!(q.shift, 0);
        let q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(100));
        assert_eq!(q.shift, 7, "128µs buckets for δ = 100µs");
        let q: EventQueue<u64> = EventQueue::with_delta(Duration::from_micros(u64::MAX));
        assert_eq!(q.shift, MAX_WIDTH_SHIFT);
    }

    #[test]
    fn queue_stress_is_deterministic() {
        let a = queue_stress(10_000, 10);
        let b = queue_stress(10_000, 10);
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}

#[cfg(test)]
mod model_tests {
    //! The calendar queue fuzzed against a reference model: a
    //! `BinaryHeap<Reverse<(time, seq)>>` is trivially correct for
    //! "(time, push-order) priority", so interleaved push/pop streams —
    //! including far-future spills that cross the ring boundary and
    //! equal-instant bursts — must pop identically from both.

    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// One decoded step of the fuzzed workload.
    enum Op {
        Pop,
        /// Push at `last popped instant + delay`.
        Push {
            delay: u64,
        },
    }

    /// Decodes raw words into ops: ~1/3 pops; pushes cluster near the
    /// cursor (repeating small delays → equal-instant FIFO collisions)
    /// with a deliberate far-future tail that overshoots the ring horizon.
    fn decode(words: &[u64], ring_span: u64) -> Vec<Op> {
        words
            .iter()
            .map(|&w| match w % 6 {
                0 | 1 => Op::Pop,
                2 => Op::Push { delay: 0 },
                3 => Op::Push {
                    delay: (w >> 8) % 4,
                },
                4 => Op::Push {
                    delay: (w >> 8) % (2 * ring_span),
                },
                _ => Op::Push {
                    delay: ring_span + (w >> 8) % (16 * ring_span),
                },
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        #[test]
        fn matches_reference_heap(words: Vec<u64>, delta_pow in 0u32..12) {
            let delta_us = 1u64 << delta_pow;
            let ring_span = delta_us * NUM_SLOTS as u64;
            let mut q: EventQueue<u64> =
                EventQueue::with_delta(Duration::from_micros(delta_us));
            let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for op in decode(&words, ring_span) {
                match op {
                    Op::Pop => {
                        let expect = model.pop().map(|Reverse(pair)| pair);
                        let got = q.pop().map(|e| match e.kind {
                            EventKind::Timer { tag, .. } => (e.at.as_micros(), tag),
                            _ => unreachable!("only timers pushed"),
                        });
                        prop_assert_eq!(got, expect, "pop mismatch at seq {}", seq);
                        if let Some((t, _)) = got {
                            now = t; // pushes never precede the last pop
                        }
                    }
                    Op::Push { delay } => {
                        let t = now.saturating_add(delay);
                        model.push(Reverse((t, seq)));
                        q.push(
                            GlobalTime::from_micros(t),
                            EventKind::Timer { party: PartyId::new(0), tag: seq },
                        );
                        seq += 1;
                    }
                }
                prop_assert_eq!(q.len(), model.len());
            }
            // Full drain: tails must agree too.
            while let Some(Reverse(pair)) = model.pop() {
                let got = q.pop().map(|e| match e.kind {
                    EventKind::Timer { tag, .. } => (e.at.as_micros(), tag),
                    _ => unreachable!(),
                });
                prop_assert_eq!(got, Some(pair));
            }
            prop_assert_eq!(q.pop().map(|e| e.at), None);
        }
    }
}
