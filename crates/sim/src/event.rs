//! The event queue: a deterministic priority queue over global time.

use gcl_types::{GlobalTime, PartyId, Value};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Party starts its protocol (local clock begins).
    Start(PartyId),
    /// Message delivery.
    Deliver {
        to: PartyId,
        from: PartyId,
        msg: M,
        /// Asynchronous-round tag (causal depth) of the message.
        round: u32,
    },
    /// Timer expiry.
    Timer { party: PartyId, tag: u64 },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: GlobalTime,
    /// Monotone sequence number: deterministic FIFO tie-break at equal time.
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: GlobalTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// One entry of an execution trace (enabled via
/// [`SimulationBuilder::record_trace`](crate::SimulationBuilder::record_trace)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEntry {
    /// A party started.
    Started {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
    },
    /// A message was delivered.
    Delivered {
        /// When (global clock).
        at: GlobalTime,
        /// Sender.
        from: PartyId,
        /// Recipient.
        to: PartyId,
        /// Async-round tag of the message.
        round: u32,
        /// `Debug` rendering of the message.
        msg: String,
    },
    /// A timer fired.
    TimerFired {
        /// When (global clock).
        at: GlobalTime,
        /// Whose timer.
        party: PartyId,
        /// The tag it was set with.
        tag: u64,
    },
    /// A party committed.
    Committed {
        /// When (global clock).
        at: GlobalTime,
        /// Which party.
        party: PartyId,
        /// Committed value.
        value: Value,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            GlobalTime::from_micros(30),
            EventKind::Start(PartyId::new(0)),
        );
        q.push(
            GlobalTime::from_micros(10),
            EventKind::Start(PartyId::new(1)),
        );
        q.push(
            GlobalTime::from_micros(20),
            EventKind::Start(PartyId::new(2)),
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_micros())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_at_equal_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let t = GlobalTime::from_micros(5);
        for i in 0..4 {
            q.push(t, EventKind::Start(PartyId::new(i)));
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Start(p) => p.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3], "ties break in push order");
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(GlobalTime::ZERO, EventKind::Start(PartyId::new(0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
