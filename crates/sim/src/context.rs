//! The party-side API: [`Context`], [`Protocol`], [`Strategy`].

use gcl_types::{Config, Duration, LocalTime, PartyId, Value, WireMsg};

/// Everything a party may do to the outside world.
///
/// Handlers receive a `&mut dyn Context<M>`; the runtime (simulator or the
/// threaded `gcl-net` runtime) implements it. All time visible here is the
/// party's **local clock** (0 = this party's protocol start).
pub trait Context<M> {
    /// This party's identity.
    fn me(&self) -> PartyId;

    /// The `(n, f)` configuration of the run.
    fn config(&self) -> Config;

    /// The party's local clock.
    fn now(&self) -> LocalTime;

    /// Sends `msg` to one party. Sending to `self.me()` delivers locally
    /// with zero delay (a party always hears itself immediately).
    fn send(&mut self, to: PartyId, msg: M);

    /// Schedules a timer to fire `delay` from now, carrying `tag` back to
    /// [`Strategy::on_timer`]. Timers are never cancelled; stale tags are
    /// simply ignored by the handler.
    fn set_timer(&mut self, delay: Duration, tag: u64);

    /// Irrevocably commits `value`. A party commits at most once; extra
    /// calls are ignored by the runtime (the first wins) — honest protocols
    /// never double-commit, and this keeps metrics well-defined when
    /// exercising buggy strawmen.
    fn commit(&mut self, value: Value);

    /// Halts this party: no further messages or timers will be delivered.
    fn terminate(&mut self);

    /// Sends `msg` to all `n` parties in id order, including the sender
    /// itself (the paper's "send to all parties").
    ///
    /// The default forwards to [`Context::send`] once per party; runtimes
    /// may override it with a shared-payload fast path — the simulator
    /// enqueues **one** reference-counted payload plus `n` pointer bumps
    /// instead of `n` deep clones, which is what makes signature-chain
    /// fan-outs (Dolev–Strong, vote bundles) cheap at large `n`.
    fn multicast(&mut self, msg: M)
    where
        M: Clone,
    {
        let n = self.config().n() as u32;
        for i in 0..n {
            self.send(PartyId::new(i), msg.clone());
        }
    }

    /// Sends `msg` to every party except `skip`, in id order. Same
    /// fast-path contract as [`Context::multicast`].
    fn multicast_except(&mut self, msg: M, skip: PartyId)
    where
        M: Clone,
    {
        let n = self.config().n() as u32;
        for i in 0..n {
            let p = PartyId::new(i);
            if p != skip {
                self.send(p, msg.clone());
            }
        }
    }
}

/// Honest protocol code.
///
/// A `Protocol` is deterministic and reactive: it acts only at its start, on
/// message delivery, and on timer expiry — exactly the event model the
/// paper's indistinguishability proofs quantify over.
pub trait Protocol: Send + 'static {
    /// The protocol's wire message type — plain data: `Sync` so wall-clock
    /// runtimes may share one multicast payload across receiving threads,
    /// and [`gcl_types::Encode`]`/`[`gcl_types::Decode`] so socket
    /// backends can move it as real bytes. The simulator itself never
    /// invokes the codec — the monomorphic hot loop stays codec-free.
    type Msg: WireMsg;

    /// Called once when the party's local clock starts (local time 0).
    fn start(&mut self, ctx: &mut dyn Context<Self::Msg>);

    /// Called on each delivered message.
    fn on_message(&mut self, from: PartyId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<Self::Msg>) {
        let _ = (tag, ctx);
    }
}

/// Arbitrary (possibly Byzantine) party code.
///
/// Same shape as [`Protocol`] but type-erased over the message type, so a
/// simulation slot can host either the honest protocol or an adversarial
/// strategy. Every `Protocol` is a `Strategy` via the blanket impl — a
/// Byzantine party "behaving honestly" is just the protocol itself.
pub trait Strategy<M>: Send + 'static {
    /// Called once at the party's local time 0.
    fn start(&mut self, ctx: &mut dyn Context<M>);
    /// Called on each delivered message.
    fn on_message(&mut self, from: PartyId, msg: M, ctx: &mut dyn Context<M>);
    /// Called on timer expiry.
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<M>);
}

impl<P: Protocol> Strategy<P::Msg> for P {
    fn start(&mut self, ctx: &mut dyn Context<P::Msg>) {
        Protocol::start(self, ctx);
    }
    fn on_message(&mut self, from: PartyId, msg: P::Msg, ctx: &mut dyn Context<P::Msg>) {
        Protocol::on_message(self, from, msg, ctx);
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<P::Msg>) {
        Protocol::on_timer(self, tag, ctx);
    }
}
