//! The broadcast protocols of *"Good-case Latency of Byzantine Broadcast:
//! A Complete Categorization"* (Abraham, Nayak, Ren, Xiang — PODC 2021),
//! plus the baselines and strawmen needed to reproduce every bound.
//!
//! # Layout
//!
//! | Module | Contents | Paper reference |
//! |---|---|---|
//! | [`asynchrony`] | 2-round BRB; Bracha's BRB baseline | Fig 1, Thm 4–5 |
//! | [`psync`] | (5f−1)-psync-VBB (2-round); PBFT-style 3-round baseline | Fig 2–3, Thm 6–7 |
//! | [`sync`] | 2δ-BB, (Δ+δ)-n/3-BB, (Δ+δ)-BB, (Δ+1.5δ)-BB, Dolev–Strong, lock-step BA | Fig 5–6, 9–10, Thm 8–11, 16–18 |
//! | [`dishonest`] | trust-graph TrustCast BB for n/2 ≤ f < n | §5.5, Thm 19 |
//! | [`strawman`] | deliberately latency-overclaiming protocols the lower bounds break | Thm 4, 7, 9 |
//! | [`lower_bounds`] | the paper's adversarial executions as runnable schedules | Fig 4, 7/11, 12 |
//!
//! All protocols implement [`gcl_sim::Protocol`] and run unmodified on the
//! discrete-event simulator (`gcl-sim`) and the threaded runtime
//! (`gcl-net`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynchrony;
pub mod dishonest;
pub mod lower_bounds;
pub mod psync;
pub mod strawman;
pub mod sync;
