//! The broadcast protocols of *"Good-case Latency of Byzantine Broadcast:
//! A Complete Categorization"* (Abraham, Nayak, Ren, Xiang — PODC 2021),
//! plus the baselines and strawmen needed to reproduce every bound.
//!
//! # Layout
//!
//! | Module | Contents | Paper reference |
//! |---|---|---|
//! | [`asynchrony`] | 2-round BRB; Bracha's BRB baseline | Fig 1, Thm 4–5 |
//! | [`psync`] | (5f−1)-psync-VBB (2-round); PBFT-style 3-round baseline | Fig 2–3, Thm 6–7 |
//! | [`sync`] | 2δ-BB, (Δ+δ)-n/3-BB, (Δ+δ)-BB, (Δ+1.5δ)-BB, Dolev–Strong, lock-step BA | Fig 5–6, 9–10, Thm 8–11, 16–18 |
//! | [`dishonest`] | trust-graph TrustCast BB for n/2 ≤ f < n | §5.5, Thm 19 |
//! | [`strawman`] | deliberately latency-overclaiming protocols the lower bounds break | Thm 4, 7, 9 |
//! | [`lower_bounds`] | the paper's adversarial executions as runnable schedules | Fig 4, 7/11, 12 |
//!
//! All protocols implement [`gcl_sim::Protocol`] and run unmodified on the
//! discrete-event simulator (`gcl-sim`) and the threaded runtime
//! (`gcl-net`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynchrony;
pub mod dishonest;
pub mod lower_bounds;
pub mod psync;
pub mod strawman;
pub mod sync;

use gcl_sim::ScenarioRegistry;

/// Registers every protocol family of this crate into `reg` — one call
/// per module, one registration per family. Adding a protocol variant is
/// one `register_fn` in its module; every registry consumer (tables,
/// sweeps, property suites, examples) picks it up automatically.
pub fn register_families(reg: &mut ScenarioRegistry) {
    asynchrony::register(reg);
    psync::register(reg);
    sync::register(reg);
    dishonest::register(reg);
    strawman::register(reg);
}

/// A fresh registry holding every family of this crate.
///
/// # Examples
///
/// ```
/// let reg = gcl_core::registry();
/// let spec = reg.spec("brb2").unwrap();
/// let outcome = reg.run(&spec).unwrap();
/// assert!(outcome.agreement_holds());
/// assert_eq!(outcome.good_case_rounds(), Some(2));
/// ```
pub fn registry() -> ScenarioRegistry {
    let mut reg = ScenarioRegistry::new();
    register_families(&mut reg);
    reg
}

#[cfg(test)]
mod registry_tests {
    #[test]
    fn all_families_registered_and_canonical_specs_run() {
        let reg = super::registry();
        let expected = [
            "bb_2delta",
            "bb_majority",
            "bb_sync_start",
            "bb_third",
            "bb_unsync",
            "bracha",
            "brb2",
            "dolev_strong",
            "early_commit_bb",
            "fab2",
            "one_round_brb",
            "pbft3",
            "vbb5f1",
        ];
        assert_eq!(reg.keys().collect::<Vec<_>>(), expected);
        for key in reg.keys() {
            let family = reg.family(key).unwrap();
            let spec = family.canonical();
            assert_eq!(spec.family, key, "canonical spec key matches");
            assert!(
                family.admission().admits(spec.n, spec.f),
                "{key}: canonical shape in band"
            );
            let o = reg.run(&spec).unwrap_or_else(|e| panic!("{key}: {e}"));
            assert!(o.agreement_holds(), "{key}: agreement on canonical run");
            assert!(
                family.upholds_validity(&spec, &o),
                "{key}: validity on canonical run"
            );
            assert!(
                o.all_honest_committed(),
                "{key}: canonical good case commits"
            );
        }
    }
}
