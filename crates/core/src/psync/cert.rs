//! Figure 2: the certificate check of the `(5f−1)`-psync-VBB protocol.
//!
//! A valid certificate `C` of view `w` contains ≥ `4f−1` signed messages
//! from distinct parties, each either `⟨⊥, w⟩_j` or `⟨v, w⟩_{L_w, j}` with
//! `F(v) = true`. It **locks** `v ≠ ⊥` iff
//!
//! 1. it contains ≥ `2f−1` entries `⟨v, w⟩_{L_w, j}` (any `j`) and no entry
//!    for any `v' ≠ v`, or
//! 2. it contains ≥ `2f` entries `⟨v, w⟩_{L_w, j}` with `j ≠ L_w`.
//!
//! `∅` is a valid certificate of view 0 locking any externally valid value
//! (the [`Certificate::Genesis`] bootstrap). Certificates rank by view.
//!
//! For generality beyond the exact `n = 5f − 1` configuration the thresholds
//! are expressed through `n` and `f`: quorum `q = n − f` (= `4f−1`), rule-1
//! threshold `q − 2f` (= `2f−1`), rule-2 threshold `q − 2f + 1` (= `2f`).

use gcl_crypto::{Digest, Digestible, MemoTag, Sha256, Signature, Signer, Verify};
use gcl_types::{Config, Encode, ExternalValidity, PartyId, Value, View};
use std::collections::BTreeSet;

/// `⟨v, w⟩_{L_w}`: a value-view pair signed by the leader of view `w`.
///
/// This is the unit of equivocation detection: two `LeaderSigned` of the
/// same view with different values convict the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderSigned {
    /// The proposed value.
    pub value: Value,
    /// The view in which it was proposed.
    pub view: View,
    /// The view leader's signature over `(value, view)`.
    pub leader_sig: Signature,
}

impl LeaderSigned {
    /// The digest the leader signs.
    pub fn digest(value: Value, view: View) -> Digest {
        Digest::of(&("psync-prop", value, view))
    }

    /// Signs `(value, view)` as leader.
    pub fn new(leader: &Signer, value: Value, view: View) -> Self {
        LeaderSigned {
            value,
            view,
            leader_sig: leader.sign(Self::digest(value, view)),
        }
    }

    /// Verifies the leader signature against the round-robin leader of
    /// `view`.
    pub fn verify(&self, config: Config, v: &impl Verify) -> bool {
        let leader = self.view.leader(config.n());
        self.leader_sig.signer() == leader
            && v.verify(
                leader,
                Self::digest(self.value, self.view),
                &self.leader_sig,
            )
    }
}

impl Digestible for LeaderSigned {
    fn absorb(&self, h: &mut Sha256) {
        ("psync-ls", self.value, self.view).absorb(h);
    }
}

/// `⟨vote, ⟨v, w⟩_{L_w, i}⟩_i`: a vote — the leader-signed pair
/// counter-signed by the voter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteMsg {
    /// The leader-signed proposal being voted.
    pub ls: LeaderSigned,
    /// The voter's signature.
    pub voter_sig: Signature,
}

impl VoteMsg {
    /// The digest the voter signs.
    pub fn digest(ls: &LeaderSigned) -> Digest {
        Digest::of(&("psync-vote", ls.value, ls.view))
    }

    /// Creates a vote by `voter` for `ls`.
    pub fn new(voter: &Signer, ls: LeaderSigned) -> Self {
        VoteMsg {
            ls,
            voter_sig: voter.sign(Self::digest(&ls)),
        }
    }

    /// The voting party.
    pub fn voter(&self) -> PartyId {
        self.voter_sig.signer()
    }

    /// Verifies both signatures.
    pub fn verify(&self, config: Config, v: &impl Verify) -> bool {
        self.ls.verify(config, v) && v.verify_embedded(Self::digest(&self.ls), &self.voter_sig)
    }
}

/// A timeout message (Figure 3, step 4): `⟨⊥, w⟩_i` when the party timed
/// out before voting, `⟨v, w⟩_{L_w, i}` when it voted `v` first.
///
/// These are exactly the entries certificates are assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutMsg {
    /// Timed out before voting.
    Bot {
        /// The timed-out view.
        view: View,
        /// The sender's signature over `(⊥, view)`.
        sig: Signature,
    },
    /// Timed out after voting for the contained leader-signed value.
    Val {
        /// The leader-signed pair voted for.
        ls: LeaderSigned,
        /// The sender's counter-signature (same digest as a vote).
        voter_sig: Signature,
    },
}

impl TimeoutMsg {
    /// Digest for a `⊥` timeout of `view`.
    pub fn bot_digest(view: View) -> Digest {
        Digest::of(&("psync-bot", view))
    }

    /// Creates a `⊥` timeout.
    pub fn bot(signer: &Signer, view: View) -> Self {
        TimeoutMsg::Bot {
            view,
            sig: signer.sign(Self::bot_digest(view)),
        }
    }

    /// Creates a value timeout from the vote the party cast.
    pub fn val(signer: &Signer, ls: LeaderSigned) -> Self {
        TimeoutMsg::Val {
            ls,
            voter_sig: signer.sign(VoteMsg::digest(&ls)),
        }
    }

    /// The sending party.
    pub fn sender(&self) -> PartyId {
        match self {
            TimeoutMsg::Bot { sig, .. } => sig.signer(),
            TimeoutMsg::Val { voter_sig, .. } => voter_sig.signer(),
        }
    }

    /// The view this timeout is for.
    pub fn view(&self) -> View {
        match self {
            TimeoutMsg::Bot { view, .. } => *view,
            TimeoutMsg::Val { ls, .. } => ls.view,
        }
    }

    /// The non-⊥ value carried, if any.
    pub fn value(&self) -> Option<Value> {
        match self {
            TimeoutMsg::Bot { .. } => None,
            TimeoutMsg::Val { ls, .. } => Some(ls.value),
        }
    }

    /// Verifies signatures and (for values) external validity.
    pub fn verify(&self, config: Config, v: &impl Verify, validity: &ExternalValidity) -> bool {
        match self {
            TimeoutMsg::Bot { view, sig } => v.verify_embedded(Self::bot_digest(*view), sig),
            TimeoutMsg::Val { ls, voter_sig } => {
                validity.check(ls.value)
                    && ls.verify(config, v)
                    && v.verify_embedded(VoteMsg::digest(ls), voter_sig)
            }
        }
    }
}

impl Digestible for TimeoutMsg {
    fn absorb(&self, h: &mut Sha256) {
        match self {
            TimeoutMsg::Bot { view, .. } => ("psync-tm-bot", *view, self.sender()).absorb(h),
            TimeoutMsg::Val { ls, .. } => ("psync-tm-val", *ls, self.sender()).absorb(h),
        }
    }
}

gcl_types::wire_struct!(LeaderSigned {
    value,
    view,
    leader_sig
});
gcl_types::wire_struct!(VoteMsg { ls, voter_sig });

/// Wire codec for the certificate vocabulary (tag byte per variant).
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for TimeoutMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                TimeoutMsg::Bot { view, sig } => {
                    buf.push(1);
                    view.encode(buf);
                    sig.encode(buf);
                }
                TimeoutMsg::Val { ls, voter_sig } => {
                    buf.push(2);
                    ls.encode(buf);
                    voter_sig.encode(buf);
                }
            }
        }
    }

    impl Decode for TimeoutMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(TimeoutMsg::Bot {
                    view: Decode::decode(input)?,
                    sig: Decode::decode(input)?,
                }),
                2 => Ok(TimeoutMsg::Val {
                    ls: Decode::decode(input)?,
                    voter_sig: Decode::decode(input)?,
                }),
                tag => Err(WireError::BadTag {
                    ty: "TimeoutMsg",
                    tag,
                }),
            }
        }
    }

    impl Encode for Certificate {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                Certificate::Genesis => buf.push(1),
                Certificate::Assembled { view, entries } => {
                    buf.push(2);
                    view.encode(buf);
                    entries.encode(buf);
                }
            }
        }
    }

    impl Decode for Certificate {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(Certificate::Genesis),
                2 => Ok(Certificate::Assembled {
                    view: Decode::decode(input)?,
                    entries: Decode::decode(input)?,
                }),
                tag => Err(WireError::BadTag {
                    ty: "Certificate",
                    tag,
                }),
            }
        }
    }
}

/// What a certificate locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lock {
    /// Locks any externally valid value (only the genesis certificate).
    Any,
    /// Locks exactly this value.
    Exactly(Value),
}

impl Lock {
    /// Whether this lock permits proposing/voting `v`.
    pub fn permits(&self, v: Value) -> bool {
        match self {
            Lock::Any => true,
            Lock::Exactly(locked) => *locked == v,
        }
    }
}

/// A Figure 2 certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// `∅`, the valid certificate of view 0 locking any value.
    Genesis,
    /// A certificate assembled from ≥ `n − f` timeout messages of `view`.
    Assembled {
        /// The view the entries are for.
        view: View,
        /// The timeout entries (distinct senders).
        entries: Vec<TimeoutMsg>,
    },
}

impl Certificate {
    /// The certificate's view (genesis = view 0); certificates rank by it.
    pub fn view(&self) -> View {
        match self {
            Certificate::Genesis => View::ZERO,
            Certificate::Assembled { view, .. } => *view,
        }
    }

    /// Assembles a certificate from timeout entries for `view`.
    pub fn assemble(view: View, entries: Vec<TimeoutMsg>) -> Self {
        Certificate::Assembled { view, entries }
    }

    /// Validity per Figure 2: enough entries, distinct senders, all
    /// signatures good, all for `self.view()`, values externally valid.
    ///
    /// With an amortizing [`gcl_crypto::Verifier`] the verdict is memoized
    /// on the certificate's exact wire bytes plus every other input it
    /// depends on — `(n, f)` and the validity predicate's name (a verifier
    /// is per-protocol-instance, which holds a single predicate, so the
    /// name uniquely identifies it) — making re-delivery of a known
    /// certificate O(1) instead of O(q) signature checks.
    pub fn is_valid(&self, config: Config, v: &impl Verify, validity: &ExternalValidity) -> bool {
        match self {
            Certificate::Genesis => true,
            Certificate::Assembled { view, entries } => {
                if *view == View::ZERO {
                    return false;
                }
                let name = validity.name().as_bytes();
                let mut key = MemoTag::Cert.key(24 + name.len() + 80 * entries.len());
                key.extend_from_slice(&(config.n() as u64).to_le_bytes());
                key.extend_from_slice(&(config.f() as u64).to_le_bytes());
                key.extend_from_slice(&(name.len() as u64).to_le_bytes());
                key.extend_from_slice(name);
                self.encode(&mut key);
                v.memoized(key, || {
                    let distinct: BTreeSet<PartyId> =
                        entries.iter().map(TimeoutMsg::sender).collect();
                    distinct.len() >= config.quorum()
                        && distinct.len() == entries.len()
                        && entries
                            .iter()
                            .all(|t| t.view() == *view && t.verify(config, v, validity))
                })
            }
        }
    }

    /// What the certificate locks, assuming it [`is_valid`](Self::is_valid).
    ///
    /// Returns `None` when it locks nothing (e.g. all-⊥ entries); such
    /// certificates never update a party's lock.
    pub fn lock(&self, config: Config) -> Option<Lock> {
        match self {
            Certificate::Genesis => Some(Lock::Any),
            Certificate::Assembled { view, entries } => {
                let leader = view.leader(config.n());
                let q = config.quorum();
                let t1 = q.saturating_sub(2 * config.f()); // 2f−1 at n = 5f−1
                let t2 = t1 + 1; //                            2f at n = 5f−1
                let values: BTreeSet<Value> =
                    entries.iter().filter_map(TimeoutMsg::value).collect();
                for v in &values {
                    let for_v = entries.iter().filter(|t| t.value() == Some(*v));
                    let count = for_v.clone().count();
                    let count_non_leader = for_v.filter(|t| t.sender() != leader).count();
                    // Rule (1): ≥ t1 for v and no other value present.
                    if count >= t1 && values.len() == 1 {
                        return Some(Lock::Exactly(*v));
                    }
                    // Rule (2): ≥ t2 for v from parties other than the leader.
                    if count_non_leader >= t2 {
                        return Some(Lock::Exactly(*v));
                    }
                }
                None
            }
        }
    }

    /// True when `self` ranks strictly above `other` (higher view).
    pub fn ranks_above(&self, other: &Certificate) -> bool {
        self.view() > other.view()
    }
}

impl Digestible for Certificate {
    fn absorb(&self, h: &mut Sha256) {
        match self {
            Certificate::Genesis => "psync-cert-genesis".absorb(h),
            Certificate::Assembled { view, entries } => {
                ("psync-cert", *view, entries.clone()).absorb(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_types::accept_all;

    /// n = 5f − 1 with f = 2 → n = 9, q = 7, t1 = 3 (2f−1), t2 = 4 (2f).
    fn setup() -> (Config, Keychain, ExternalValidity) {
        (
            Config::new(9, 2).unwrap(),
            Keychain::generate(9, 5),
            accept_all(),
        )
    }

    fn leader_of(view: View, chain: &Keychain, cfg: Config) -> Signer {
        chain.signer(view.leader(cfg.n()))
    }

    use gcl_crypto::Signer;

    fn val_tm(chain: &Keychain, cfg: Config, view: View, v: Value, sender: u32) -> TimeoutMsg {
        let ls = LeaderSigned::new(&leader_of(view, chain, cfg), v, view);
        TimeoutMsg::val(&chain.signer(PartyId::new(sender)), ls)
    }

    fn bot_tm(chain: &Keychain, view: View, sender: u32) -> TimeoutMsg {
        TimeoutMsg::bot(&chain.signer(PartyId::new(sender)), view)
    }

    #[test]
    fn genesis_is_valid_and_locks_any() {
        let (cfg, chain, f) = setup();
        let g = Certificate::Genesis;
        assert!(g.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(g.lock(cfg), Some(Lock::Any));
        assert_eq!(g.view(), View::ZERO);
        assert!(Lock::Any.permits(Value::new(77)));
    }

    #[test]
    fn rule1_locks_with_2f_minus_1_votes_single_value() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        // 3 value entries (t1 = 3) + 4 bot entries = 7 = q.
        let mut entries: Vec<TimeoutMsg> = (1..=3)
            .map(|i| val_tm(&chain, cfg, w, Value::new(5), i))
            .collect();
        entries.extend((4..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), Some(Lock::Exactly(Value::new(5))));
    }

    #[test]
    fn rule1_fails_below_threshold() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        let mut entries: Vec<TimeoutMsg> = (1..=2)
            .map(|i| val_tm(&chain, cfg, w, Value::new(5), i))
            .collect();
        entries.extend((3..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), None, "2 < t1 = 3 value entries");
    }

    #[test]
    fn rule1_blocked_by_conflicting_value() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        // 3 entries for v, 1 for v' (leader equivocated), 3 bot = 7 entries.
        // Rule 1 fails (two values), rule 2 fails (3 < t2 = 4 non-leader).
        let mut entries: Vec<TimeoutMsg> = (1..=3)
            .map(|i| val_tm(&chain, cfg, w, Value::new(5), i))
            .collect();
        entries.push(val_tm(&chain, cfg, w, Value::new(6), 4));
        entries.extend((5..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), None);
    }

    #[test]
    fn rule2_locks_despite_equivocation() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST; // leader = P0
                             // 4 non-leader entries for v (t2 = 4), 1 for v', 2 bot = 7 entries.
        let mut entries: Vec<TimeoutMsg> = (1..=4)
            .map(|i| val_tm(&chain, cfg, w, Value::new(5), i))
            .collect();
        entries.push(val_tm(&chain, cfg, w, Value::new(6), 5));
        entries.extend((6..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), Some(Lock::Exactly(Value::new(5))));
    }

    #[test]
    fn leader_entry_does_not_count_for_rule2() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST; // leader = P0
                             // 3 non-leader + 1 leader entry for v, plus v' entry: rule 2 needs 4
                             // non-leader, only 3.
        let mut entries: Vec<TimeoutMsg> = (1..=3)
            .map(|i| val_tm(&chain, cfg, w, Value::new(5), i))
            .collect();
        entries.push(val_tm(&chain, cfg, w, Value::new(5), 0)); // leader itself
        entries.push(val_tm(&chain, cfg, w, Value::new(6), 5));
        entries.extend((6..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), None);
    }

    #[test]
    fn too_few_entries_invalid() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        let entries: Vec<TimeoutMsg> = (1..=6).map(|i| bot_tm(&chain, w, i)).collect();
        let c = Certificate::assemble(w, entries);
        assert!(!c.is_valid(cfg, &chain.pki(), &f), "6 < q = 7");
    }

    #[test]
    fn duplicate_senders_invalid() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        let mut entries: Vec<TimeoutMsg> = (1..=6).map(|i| bot_tm(&chain, w, i)).collect();
        entries.push(bot_tm(&chain, w, 6)); // duplicate sender 6
        let c = Certificate::assemble(w, entries);
        assert!(!c.is_valid(cfg, &chain.pki(), &f));
    }

    #[test]
    fn wrong_view_entry_invalid() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        let mut entries: Vec<TimeoutMsg> = (1..=6).map(|i| bot_tm(&chain, w, i)).collect();
        entries.push(bot_tm(&chain, w.next(), 7));
        let c = Certificate::assemble(w, entries);
        assert!(!c.is_valid(cfg, &chain.pki(), &f));
    }

    #[test]
    fn externally_invalid_value_rejected() {
        let (cfg, chain, _) = setup();
        let only_small = ExternalValidity::new("small", |v: Value| v.as_u64() < 10);
        let w = View::FIRST;
        let mut entries: Vec<TimeoutMsg> = (1..=3)
            .map(|i| val_tm(&chain, cfg, w, Value::new(100), i))
            .collect();
        entries.extend((4..=7).map(|i| bot_tm(&chain, w, i)));
        let c = Certificate::assemble(w, entries);
        assert!(!c.is_valid(cfg, &chain.pki(), &only_small));
    }

    #[test]
    fn ranking_by_view() {
        let (cfg, chain, _) = setup();
        let _ = cfg;
        let w2 = View::new(2);
        let c2 = Certificate::assemble(w2, vec![bot_tm(&chain, w2, 1)]);
        assert!(c2.ranks_above(&Certificate::Genesis));
        assert!(!Certificate::Genesis.ranks_above(&c2));
    }

    #[test]
    fn vote_and_leader_signed_verify() {
        let (cfg, chain, _) = setup();
        let w = View::FIRST;
        let ls = LeaderSigned::new(&chain.signer(PartyId::new(0)), Value::new(1), w);
        assert!(ls.verify(cfg, &chain.pki()));
        // Signed by a non-leader: rejected.
        let bad = LeaderSigned::new(&chain.signer(PartyId::new(3)), Value::new(1), w);
        assert!(!bad.verify(cfg, &chain.pki()));
        let vote = VoteMsg::new(&chain.signer(PartyId::new(2)), ls);
        assert!(vote.verify(cfg, &chain.pki()));
        assert_eq!(vote.voter(), PartyId::new(2));
    }

    #[test]
    fn timeout_accessors() {
        let (cfg, chain, f) = setup();
        let w = View::FIRST;
        let b = bot_tm(&chain, w, 3);
        assert_eq!(b.sender(), PartyId::new(3));
        assert_eq!(b.view(), w);
        assert_eq!(b.value(), None);
        assert!(b.verify(cfg, &chain.pki(), &f));
        let v = val_tm(&chain, cfg, w, Value::new(4), 2);
        assert_eq!(v.value(), Some(Value::new(4)));
        assert!(v.verify(cfg, &chain.pki(), &f));
    }

    #[test]
    fn lock_permits() {
        assert!(Lock::Exactly(Value::new(3)).permits(Value::new(3)));
        assert!(!Lock::Exactly(Value::new(3)).permits(Value::new(4)));
    }

    #[test]
    fn f1_n4_thresholds() {
        // The paper's highlighted case: f = 1, n = 4 = 5f−1 = 3f+1.
        // q = 3, t1 = 1, t2 = 2.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 6);
        let f = accept_all();
        let w = View::FIRST;
        let mut entries = vec![val_tm(&chain, cfg, w, Value::new(9), 1)];
        entries.push(bot_tm(&chain, w, 2));
        entries.push(bot_tm(&chain, w, 3));
        let c = Certificate::assemble(w, entries);
        assert!(c.is_valid(cfg, &chain.pki(), &f));
        assert_eq!(c.lock(cfg), Some(Lock::Exactly(Value::new(9))));
    }
}
