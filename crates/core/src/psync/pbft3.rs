//! PBFT-style psync-VBB baseline: 3-round good case, `n ≥ 3f + 1`.
//!
//! This is the protocol the paper positions its `(5f−1)` result against:
//! propose → prepare → commit, with the classical prepared-certificate view
//! change. By Theorem 7, 3 rounds are *optimal* in the resilience band
//! `3f + 1 ≤ n ≤ 5f − 2`; by Theorem 2 it is one round slower than
//! necessary whenever `n ≥ 5f − 1` (including the famous `n = 4, f = 1`).

use gcl_crypto::{Digest, MemoTag, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, Encode, ExternalValidity, PartyId, Value, View};
use std::collections::{BTreeMap, BTreeSet};

/// `⟨v, w⟩_{L_w}` with a PBFT-specific signing domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbftProposal {
    /// Proposed value.
    pub value: Value,
    /// Proposing view.
    pub view: View,
    /// Leader signature over `("pbft-prop", value, view)`.
    pub sig: Signature,
}

impl PbftProposal {
    fn digest(value: Value, view: View) -> Digest {
        Digest::of(&("pbft-prop", value, view))
    }

    /// Leader-signs a proposal.
    pub fn new(leader: &Signer, value: Value, view: View) -> Self {
        PbftProposal {
            value,
            view,
            sig: leader.sign(Self::digest(value, view)),
        }
    }

    /// Verifies against the round-robin leader of `view`.
    pub fn verify(&self, config: Config, v: &impl Verify) -> bool {
        let leader = self.view.leader(config.n());
        self.sig.signer() == leader
            && v.verify(leader, Self::digest(self.value, self.view), &self.sig)
    }
}

/// A phase vote (prepare or commit) on `(value, view)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseVote {
    /// Voted value.
    pub value: Value,
    /// Voted view.
    pub view: View,
    /// Voter signature over `(phase-tag, value, view)`.
    pub sig: Signature,
}

impl PhaseVote {
    fn digest(phase: &'static str, value: Value, view: View) -> Digest {
        Digest::of(&(phase, value, view))
    }

    fn new(phase: &'static str, signer: &Signer, value: Value, view: View) -> Self {
        PhaseVote {
            value,
            view,
            sig: signer.sign(Self::digest(phase, value, view)),
        }
    }

    fn verify(&self, phase: &'static str, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(phase, self.value, self.view), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

const PREPARE: &str = "pbft-prepare";
const COMMIT: &str = "pbft-commit";

/// Proof that `n − f` parties prepared `(value, view)` — the object carried
/// through view changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedCert {
    /// Prepared value.
    pub value: Value,
    /// Prepared view.
    pub view: View,
    /// The `n − f` prepare votes.
    pub prepares: Vec<PhaseVote>,
}

impl PreparedCert {
    /// Full verification: quorum size, distinct voters, signatures.
    ///
    /// The verdict is memoized on the verifier (tagged
    /// [`MemoTag::Prepared`]): a certificate carried by every view-change
    /// message of a quorum costs `n − f` MAC checks once, then one lookup
    /// per re-appearance.
    pub fn verify(&self, config: Config, v: &impl Verify) -> bool {
        let mut key = MemoTag::Prepared.key(56 + 52 * self.prepares.len());
        key.extend_from_slice(&(config.n() as u64).to_le_bytes());
        key.extend_from_slice(&(config.f() as u64).to_le_bytes());
        self.encode(&mut key);
        v.memoized(key, || {
            let voters: BTreeSet<PartyId> = self.prepares.iter().map(PhaseVote::voter).collect();
            voters.len() >= config.quorum()
                && voters.len() == self.prepares.len()
                && self
                    .prepares
                    .iter()
                    .all(|p| p.value == self.value && p.view == self.view && p.verify(PREPARE, v))
        })
    }
}

/// A view-change message: the view being abandoned plus the sender's
/// highest prepared certificate (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeMsg {
    /// The view being left.
    pub view: View,
    /// Highest prepared certificate the sender holds.
    pub prepared: Option<PreparedCert>,
    /// Sender signature.
    pub sig: Signature,
}

impl ViewChangeMsg {
    fn digest(view: View, prepared: &Option<PreparedCert>) -> Digest {
        let tag = prepared.as_ref().map(|p| (p.value, p.view));
        match tag {
            None => Digest::of(&("pbft-vc", view)),
            Some((v, w)) => Digest::of(&("pbft-vc", view, v, w)),
        }
    }

    /// Creates a signed view-change message.
    pub fn new(signer: &Signer, view: View, prepared: Option<PreparedCert>) -> Self {
        let sig = signer.sign(Self::digest(view, &prepared));
        ViewChangeMsg {
            view,
            prepared,
            sig,
        }
    }

    /// The sender.
    pub fn sender(&self) -> PartyId {
        self.sig.signer()
    }

    /// Verifies signature and embedded certificate.
    ///
    /// Memoized whole (tagged [`MemoTag::ViewChange`]), so a message seen
    /// both directly and inside a forwarded [`PbftMsg::ViewChangeBundle`]
    /// or a proposal proof is re-checked in O(1).
    pub fn verify(&self, config: Config, v: &impl Verify) -> bool {
        let mut key = MemoTag::ViewChange.key(64);
        key.extend_from_slice(&(config.n() as u64).to_le_bytes());
        key.extend_from_slice(&(config.f() as u64).to_le_bytes());
        self.encode(&mut key);
        v.memoized(key, || {
            if !v.verify_embedded(Self::digest(self.view, &self.prepared), &self.sig) {
                return false;
            }
            match &self.prepared {
                None => true,
                Some(pc) => pc.view <= self.view && pc.verify(config, v),
            }
        })
    }
}

/// Wire messages of the PBFT baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbftMsg {
    /// Leader proposal; `proof` is empty for view 1, else `n − f`
    /// view-change messages of the previous view.
    Propose {
        /// Leader-signed proposal.
        prop: PbftProposal,
        /// View-change justification (empty for view 1).
        proof: Vec<ViewChangeMsg>,
    },
    /// Phase-1 vote.
    Prepare(PhaseVote),
    /// Phase-2 vote.
    Commit(PhaseVote),
    /// Forwarded commit quorum (termination helper).
    CommitBundle(Vec<PhaseVote>),
    /// View change.
    ViewChange(ViewChangeMsg),
    /// Forwarded view-change quorum (laggard catch-up).
    ViewChangeBundle(Vec<ViewChangeMsg>),
}

gcl_types::wire_struct!(PbftProposal { value, view, sig });
gcl_types::wire_struct!(PhaseVote { value, view, sig });
gcl_types::wire_struct!(PreparedCert {
    value,
    view,
    prepares
});
gcl_types::wire_struct!(ViewChangeMsg {
    view,
    prepared,
    sig
});

/// Wire codec: one tag byte per message kind.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for PbftMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                PbftMsg::Propose { prop, proof } => {
                    buf.push(1);
                    prop.encode(buf);
                    proof.encode(buf);
                }
                PbftMsg::Prepare(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                PbftMsg::Commit(v) => {
                    buf.push(3);
                    v.encode(buf);
                }
                PbftMsg::CommitBundle(vs) => {
                    buf.push(4);
                    vs.encode(buf);
                }
                PbftMsg::ViewChange(vc) => {
                    buf.push(5);
                    vc.encode(buf);
                }
                PbftMsg::ViewChangeBundle(vcs) => {
                    buf.push(6);
                    vcs.encode(buf);
                }
            }
        }
    }

    impl Decode for PbftMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(PbftMsg::Propose {
                    prop: Decode::decode(input)?,
                    proof: Decode::decode(input)?,
                }),
                2 => Ok(PbftMsg::Prepare(Decode::decode(input)?)),
                3 => Ok(PbftMsg::Commit(Decode::decode(input)?)),
                4 => Ok(PbftMsg::CommitBundle(Decode::decode(input)?)),
                5 => Ok(PbftMsg::ViewChange(Decode::decode(input)?)),
                6 => Ok(PbftMsg::ViewChangeBundle(Decode::decode(input)?)),
                tag => Err(WireError::BadTag { ty: "PbftMsg", tag }),
            }
        }
    }
}

/// One party of the PBFT-style 3-round psync-VBB.
///
/// # Examples
///
/// ```
/// use gcl_core::psync::PbftPsyncVbb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{accept_all, Config, Duration, GlobalTime, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let chain = Keychain::generate(4, 3);
/// let delta = Duration::from_micros(100);
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::PartialSynchrony { gst: GlobalTime::ZERO, big_delta: delta })
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         PbftPsyncVbb::new(cfg, chain.signer(p), chain.pki(), accept_all(), delta,
///                           (p == PartyId::new(0)).then_some(Value::new(7)))
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(7)));
/// assert_eq!(outcome.good_case_rounds(), Some(3)); // one more than (5f−1)-VBB
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct PbftPsyncVbb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    validity: ExternalValidity,
    big_delta: Duration,
    input: Option<Value>,
    fallback: Value,
    view: View,
    prepared: Option<PreparedCert>,
    sent_prepare: Option<View>,
    sent_commit: Option<View>,
    sent_vc: BTreeSet<View>,
    committed: bool,
    proposed: bool,
    prepares: BTreeMap<(View, Value), BTreeMap<PartyId, PhaseVote>>,
    commits: BTreeMap<(View, Value), BTreeMap<PartyId, PhaseVote>>,
    view_changes: BTreeMap<View, BTreeMap<PartyId, ViewChangeMsg>>,
    pending: BTreeMap<View, (PbftProposal, Vec<ViewChangeMsg>)>,
}

impl PbftPsyncVbb {
    /// Creates the party-side state; `input` is `Some` only at the view-1
    /// leader (party 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3f + 1` or the input/role assignment is inconsistent.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        validity: ExternalValidity,
        big_delta: Duration,
        input: Option<Value>,
    ) -> Self {
        assert!(config.supports_brb(), "PBFT requires n >= 3f + 1");
        let is_first_leader = signer.id() == View::FIRST.leader(config.n());
        assert_eq!(input.is_some(), is_first_leader);
        let fallback = Value::new(2_000_000 + u64::from(signer.id().index()));
        PbftPsyncVbb {
            config,
            signer,
            verifier: verifier.into(),
            validity,
            big_delta,
            input,
            fallback,
            view: View::FIRST,
            prepared: None,
            sent_prepare: None,
            sent_commit: None,
            sent_vc: BTreeSet::new(),
            committed: false,
            proposed: false,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            view_changes: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Overrides the no-lock fallback proposal value.
    #[must_use]
    pub fn with_fallback(mut self, v: Value) -> Self {
        self.fallback = v;
        self
    }

    fn me(&self) -> PartyId {
        self.signer.id()
    }

    fn q(&self) -> usize {
        self.config.quorum()
    }

    fn leader(&self, view: View) -> PartyId {
        view.leader(self.config.n())
    }

    fn proof_justifies(&self, prop: &PbftProposal, proof: &[ViewChangeMsg]) -> bool {
        if prop.view == View::FIRST {
            return proof.is_empty();
        }
        let prev = prop.view.prev();
        let senders: BTreeSet<PartyId> = proof.iter().map(ViewChangeMsg::sender).collect();
        if senders.len() < self.q() || senders.len() != proof.len() {
            return false;
        }
        if !proof
            .iter()
            .all(|vc| vc.view == prev && vc.verify(self.config, &self.verifier))
        {
            return false;
        }
        let highest = proof
            .iter()
            .filter_map(|vc| vc.prepared.as_ref())
            .max_by_key(|pc| pc.view);
        match highest {
            Some(pc) => pc.value == prop.value,
            None => true, // nothing prepared: any externally valid value
        }
    }

    fn maybe_prepare(
        &mut self,
        prop: PbftProposal,
        proof: Vec<ViewChangeMsg>,
        ctx: &mut dyn Context<PbftMsg>,
    ) {
        if self.committed
            || prop.view != self.view
            || self.sent_prepare == Some(prop.view)
            || self.sent_vc.contains(&prop.view)
        {
            return;
        }
        if !self.proof_justifies(&prop, &proof) {
            return;
        }
        self.sent_prepare = Some(prop.view);
        ctx.multicast(PbftMsg::Prepare(PhaseVote::new(
            PREPARE,
            &self.signer,
            prop.value,
            prop.view,
        )));
    }

    fn record_prepare(&mut self, vote: PhaseVote, ctx: &mut dyn Context<PbftMsg>) {
        let q = self.q();
        let key = (vote.view, vote.value);
        let bucket = self.prepares.entry(key).or_default();
        bucket.insert(vote.voter(), vote);
        if bucket.len() >= q && self.sent_commit != Some(vote.view) && !self.committed {
            self.sent_commit = Some(vote.view);
            let pc = PreparedCert {
                value: vote.value,
                view: vote.view,
                prepares: bucket.values().copied().collect(),
            };
            if self.prepared.as_ref().is_none_or(|old| old.view < pc.view) {
                self.prepared = Some(pc);
            }
            ctx.multicast(PbftMsg::Commit(PhaseVote::new(
                COMMIT,
                &self.signer,
                vote.value,
                vote.view,
            )));
        }
    }

    fn record_commit(&mut self, vote: PhaseVote, ctx: &mut dyn Context<PbftMsg>) {
        let q = self.q();
        let key = (vote.view, vote.value);
        let bucket = self.commits.entry(key).or_default();
        bucket.insert(vote.voter(), vote);
        if bucket.len() >= q && !self.committed {
            self.committed = true;
            let bundle: Vec<PhaseVote> = bucket.values().copied().collect();
            ctx.multicast_except(PbftMsg::CommitBundle(bundle), self.me());
            ctx.commit(vote.value);
            ctx.terminate();
        }
    }

    fn send_own_vc(&mut self, view: View, ctx: &mut dyn Context<PbftMsg>) {
        if !self.sent_vc.insert(view) {
            return;
        }
        ctx.multicast(PbftMsg::ViewChange(ViewChangeMsg::new(
            &self.signer,
            view,
            self.prepared.clone(),
        )));
    }

    fn try_advance(&mut self, ctx: &mut dyn Context<PbftMsg>) {
        loop {
            if self.committed {
                return;
            }
            let w = self.view;
            let Some(pool) = self.view_changes.get(&w) else {
                return;
            };
            if pool.len() < self.q() {
                return;
            }
            let bundle: Vec<ViewChangeMsg> = pool.values().cloned().collect();
            ctx.multicast_except(PbftMsg::ViewChangeBundle(bundle.clone()), self.me());
            self.send_own_vc(w, ctx);
            let new_view = w.next();
            self.view = new_view;
            self.proposed = false;
            ctx.set_timer(self.big_delta * 4, new_view.number());
            if self.leader(new_view) == self.me() {
                self.propose_with(bundle, ctx);
            }
            if let Some((prop, proof)) = self.pending.remove(&new_view) {
                self.maybe_prepare(prop, proof, ctx);
            }
        }
    }

    // Byte-equality re-delivery checks: a message identical to the copy
    // already recorded for its slot was verified when first recorded, so
    // the verdict is `true` with no verifier work. A differing message in
    // the same slot (two valid view-changes from one Byzantine sender)
    // falls through to full verification, preserving overwrite semantics.

    fn prepare_checks(&self, v: &PhaseVote) -> bool {
        match self
            .prepares
            .get(&(v.view, v.value))
            .and_then(|m| m.get(&v.voter()))
        {
            Some(r) if r == v => true,
            _ => v.verify(PREPARE, &self.verifier) && self.validity.check(v.value),
        }
    }

    fn commit_checks(&self, v: &PhaseVote) -> bool {
        match self
            .commits
            .get(&(v.view, v.value))
            .and_then(|m| m.get(&v.voter()))
        {
            Some(r) if r == v => true,
            _ => v.verify(COMMIT, &self.verifier) && self.validity.check(v.value),
        }
    }

    fn view_change_checks(&self, vc: &ViewChangeMsg) -> bool {
        match self
            .view_changes
            .get(&vc.view)
            .and_then(|m| m.get(&vc.sender()))
        {
            Some(r) if r == vc => true,
            _ => vc.verify(self.config, &self.verifier),
        }
    }

    fn propose_with(&mut self, proof: Vec<ViewChangeMsg>, ctx: &mut dyn Context<PbftMsg>) {
        if self.committed || self.proposed {
            return;
        }
        let w = self.view;
        let value = proof
            .iter()
            .filter_map(|vc| vc.prepared.as_ref())
            .max_by_key(|pc| pc.view)
            .map_or(self.fallback, |pc| pc.value);
        let prop = PbftProposal::new(&self.signer, value, w);
        self.proposed = true;
        ctx.multicast(PbftMsg::Propose { prop, proof });
    }
}

impl Protocol for PbftPsyncVbb {
    type Msg = PbftMsg;

    fn start(&mut self, ctx: &mut dyn Context<PbftMsg>) {
        ctx.set_timer(self.big_delta * 4, View::FIRST.number());
        if self.leader(View::FIRST) == self.me() {
            let v = self.input.expect("view-1 leader has an input");
            let prop = PbftProposal::new(&self.signer, v, View::FIRST);
            self.proposed = true;
            ctx.multicast(PbftMsg::Propose {
                prop,
                proof: Vec::new(),
            });
        }
    }

    fn on_message(&mut self, from: PartyId, msg: PbftMsg, ctx: &mut dyn Context<PbftMsg>) {
        if self.committed {
            return;
        }
        match msg {
            PbftMsg::Propose { prop, proof } => {
                if from != self.leader(prop.view)
                    || !prop.verify(self.config, &self.verifier)
                    || !self.validity.check(prop.value)
                {
                    return;
                }
                if prop.view > self.view {
                    self.pending.entry(prop.view).or_insert((prop, proof));
                } else {
                    self.maybe_prepare(prop, proof, ctx);
                }
            }
            PbftMsg::Prepare(v) => {
                if self.prepare_checks(&v) {
                    self.record_prepare(v, ctx);
                }
            }
            PbftMsg::Commit(v) => {
                if self.commit_checks(&v) {
                    self.record_commit(v, ctx);
                }
            }
            PbftMsg::CommitBundle(votes) => {
                for v in votes {
                    if self.commit_checks(&v) {
                        self.record_commit(v, ctx);
                        if self.committed {
                            break;
                        }
                    }
                }
            }
            PbftMsg::ViewChange(vc) => {
                if vc.view >= self.view && self.view_change_checks(&vc) {
                    self.view_changes
                        .entry(vc.view)
                        .or_default()
                        .insert(vc.sender(), vc);
                    self.try_advance(ctx);
                }
            }
            PbftMsg::ViewChangeBundle(vcs) => {
                let mut touched = false;
                for vc in vcs {
                    if vc.view >= self.view && self.view_change_checks(&vc) {
                        self.view_changes
                            .entry(vc.view)
                            .or_default()
                            .insert(vc.sender(), vc);
                        touched = true;
                    }
                }
                if touched {
                    self.try_advance(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<PbftMsg>) {
        if self.committed {
            return;
        }
        let view = View::new(tag);
        if view == self.view {
            self.send_own_vc(view, ctx);
            self.try_advance(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Silent, Simulation, TimingModel};
    use gcl_types::{accept_all, GlobalTime};

    const DELTA: Duration = Duration::from_micros(100);

    fn psync_gst0() -> TimingModel {
        TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        }
    }

    fn good_case(n: usize, f: usize) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 30);
        Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                PbftPsyncVbb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(8)),
                )
            })
            .run()
    }

    #[test]
    fn good_case_three_rounds() {
        // Includes the band 3f+1 <= n <= 5f-2 where 3 rounds are OPTIMAL
        // (n = 8, f = 2 and n = 11, f = 3).
        for (n, f) in [(4, 1), (8, 2), (11, 3), (10, 3)] {
            let o = good_case(n, f);
            assert!(o.validity_holds(Value::new(8)), "n={n} f={f}");
            assert_eq!(o.good_case_rounds(), Some(3), "n={n} f={f}");
        }
    }

    #[test]
    fn good_case_latency_three_deltas() {
        let o = good_case(4, 1);
        assert_eq!(o.good_case_latency(), Some(DELTA * 3));
    }

    #[test]
    fn one_round_slower_than_vbb_at_n4() {
        // The Liskov question, answered: at n = 4, f = 1, PBFT's 3 rounds
        // are not optimal — (5f−1)-VBB does 2.
        use crate::psync::VbbFiveFMinusOne;
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 31);
        let vbb = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(8)),
                )
            })
            .run();
        let pbft = good_case(4, 1);
        assert_eq!(vbb.good_case_rounds(), Some(2));
        assert_eq!(pbft.good_case_rounds(), Some(3));
    }

    #[test]
    fn silent_leader_view_change() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 32);
        let o = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                PbftPsyncVbb::new(cfg, chain.signer(p), chain.pki(), accept_all(), DELTA, None)
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(2_000_001)));
    }

    #[test]
    fn prepared_value_survives_view_change() {
        // Hold commit-phase messages from reaching anyone but P1 so only P1
        // commits in view 1; the rest must re-commit the SAME value in
        // view 2 via the prepared certificate.
        use gcl_sim::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 33);
        let gst = GlobalTime::from_micros(50_000);
        let far = Duration::from_micros(100_000);
        let oracle: ScheduleOracle<PbftMsg> = ScheduleOracle::new(Duration::from_micros(10))
            .rule(
                DelayRule::link(
                    PartySet::Any,
                    PartySet::In(vec![PartyId::new(0), PartyId::new(2), PartyId::new(3)]),
                    LinkDelay::Finite(far),
                )
                .when(|m: &PbftMsg| matches!(m, PbftMsg::Commit(_))),
            )
            .rule(DelayRule::link(
                PartySet::One(PartyId::new(1)),
                PartySet::Any,
                LinkDelay::Finite(far),
            ));
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst,
                big_delta: DELTA,
            })
            .oracle(oracle)
            .spawn_honest(|p| {
                PbftPsyncVbb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(8)),
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(8)));
    }

    #[test]
    fn proposal_against_prepared_lock_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 34);
        let p = PbftPsyncVbb::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            accept_all(),
            DELTA,
            None,
        );
        // Build a proof whose highest prepared cert locks value 5; a
        // proposal for 6 must not be justified.
        let prepares: Vec<PhaseVote> = (0..3)
            .map(|i| {
                PhaseVote::new(
                    PREPARE,
                    &chain.signer(PartyId::new(i)),
                    Value::new(5),
                    View::FIRST,
                )
            })
            .collect();
        let pc = PreparedCert {
            value: Value::new(5),
            view: View::FIRST,
            prepares,
        };
        let proof: Vec<ViewChangeMsg> = (0..3)
            .map(|i| {
                ViewChangeMsg::new(
                    &chain.signer(PartyId::new(i)),
                    View::FIRST,
                    Some(pc.clone()),
                )
            })
            .collect();
        let good = PbftProposal::new(&chain.signer(PartyId::new(1)), Value::new(5), View::new(2));
        let bad = PbftProposal::new(&chain.signer(PartyId::new(1)), Value::new(6), View::new(2));
        assert!(p.proof_justifies(&good, &proof));
        assert!(!p.proof_justifies(&bad, &proof));
    }

    #[test]
    fn forged_prepared_cert_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 35);
        let rogue = Keychain::generate(4, 999);
        let prepares: Vec<PhaseVote> = (0..3)
            .map(|i| {
                PhaseVote::new(
                    PREPARE,
                    &rogue.signer(PartyId::new(i)),
                    Value::new(5),
                    View::FIRST,
                )
            })
            .collect();
        let pc = PreparedCert {
            value: Value::new(5),
            view: View::FIRST,
            prepares,
        };
        assert!(!pc.verify(cfg, &chain.pki()));
    }

    #[test]
    fn view_change_msg_verify() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 36);
        let vc = ViewChangeMsg::new(&chain.signer(PartyId::new(2)), View::FIRST, None);
        assert!(vc.verify(cfg, &chain.pki()));
        assert_eq!(vc.sender(), PartyId::new(2));
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn resilience_check() {
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 1);
        let _ = PbftPsyncVbb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            accept_all(),
            DELTA,
            Some(Value::ZERO),
        );
    }
}
