//! Partially synchronous Byzantine broadcast (paper Section 4).
//!
//! The paper's headline result: in the authenticated setting, 2-round
//! good-case partially synchronous Byzantine broadcast is possible **iff
//! `n ≥ 5f − 1`** — beating FaB's long-standing `5f + 1` and showing PBFT's
//! 3 rounds are not optimal at `n = 4, f = 1`.
//!
//! * [`Certificate`], [`TimeoutMsg`] — the Figure 2 certificate check.
//! * [`VbbFiveFMinusOne`] — the Figure 3 `(5f−1)`-psync-VBB protocol with
//!   2-round good case and full view change.
//! * [`PbftPsyncVbb`] — the PBFT-style 3-round baseline, `n ≥ 3f + 1`
//!   (tight for `3f + 1 ≤ n ≤ 5f − 2` by Theorem 7).

mod cert;
mod pbft3;
mod vbb5f1;

pub use cert::{Certificate, LeaderSigned, Lock, TimeoutMsg, VoteMsg};
pub use pbft3::{PbftMsg, PbftPsyncVbb, PreparedCert};
pub use vbb5f1::{EquivocatingLeader, Proof, StatusMsg, VbbFiveFMinusOne, VbbMsg};
