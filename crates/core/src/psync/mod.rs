//! Partially synchronous Byzantine broadcast (paper Section 4).
//!
//! The paper's headline result: in the authenticated setting, 2-round
//! good-case partially synchronous Byzantine broadcast is possible **iff
//! `n ≥ 5f − 1`** — beating FaB's long-standing `5f + 1` and showing PBFT's
//! 3 rounds are not optimal at `n = 4, f = 1`.
//!
//! * [`Certificate`], [`TimeoutMsg`] — the Figure 2 certificate check.
//! * [`VbbFiveFMinusOne`] — the Figure 3 `(5f−1)`-psync-VBB protocol with
//!   2-round good case and full view change.
//! * [`PbftPsyncVbb`] — the PBFT-style 3-round baseline, `n ≥ 3f + 1`
//!   (tight for `3f + 1 ≤ n ≤ 5f − 2` by Theorem 7).

mod cert;
mod pbft3;
mod vbb5f1;

pub use cert::{Certificate, LeaderSigned, Lock, TimeoutMsg, VoteMsg};
pub use pbft3::{PbftMsg, PbftProposal, PbftPsyncVbb, PhaseVote, PreparedCert, ViewChangeMsg};
pub use vbb5f1::{EquivocatingLeader, Proof, StatusMsg, VbbFiveFMinusOne, VbbMsg};

use gcl_crypto::Keychain;
use gcl_sim::{Admission, ScenarioRegistry, ScenarioSpec, ValidityMode};
use gcl_types::accept_all;

/// Registers this module's scenario families (`vbb5f1`, `pbft3`).
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "vbb5f1",
        "(5f-1)-psync-VBB (Fig 3) — 2-round good case",
        Admission::TwoRoundPsync,
        ValidityMode::Broadcast,
        ScenarioSpec::psync("vbb5f1", 4, 1).with_seed(201),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    spec.big_delta,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "pbft3",
        "PBFT-style 3-round psync-VBB baseline",
        Admission::Brb,
        ValidityMode::Broadcast,
        ScenarioSpec::psync("pbft3", 4, 1).with_seed(202),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                PbftPsyncVbb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    spec.big_delta,
                    spec.input_for(p),
                )
            })
        },
    );
}
