//! Figure 3: the `(5f−1)`-psync-VBB protocol — 2-round good-case partially
//! synchronous validated Byzantine broadcast with optimal resilience
//! `n ≥ 5f − 1`.
//!
//! The good case is 1 round of proposing + 1 round of voting (PBFT minus a
//! phase, FaB with `2f + 2` fewer parties). The resilience gain over FaB
//! comes from the view change exploiting *detectable leader equivocation*:
//! a party that has seen two values signed by the leader waits for one more
//! timeout message, from parties other than the leader, which shifts the
//! quorum arithmetic by exactly the amount needed (see the paper's
//! Section 4.1 "Intuition").
//!
//! Protocol flow per view `w` (leader `L_w`; `L_1` is the broadcaster):
//!
//! 1. **Propose** — `L_w` multicasts `⟨propose, ⟨v,w⟩_{L_w}, S⟩`.
//! 2. **Vote** — on a first valid proposal, multicast a counter-signed vote.
//! 3. **Commit** — on `4f−1` votes for the same `v`, forward them, commit.
//! 4. **Timeout** — if not committed `4Δ` after entering `w`, multicast a
//!    timeout carrying the vote (or `⊥`).
//! 5. **New view** — on `4f−1` timeouts with a single leader-signed value,
//!    or `4f−1` timeouts from parties other than `L_{w-1}`: forward them,
//!    update the lock certificate, enter `w`, send a status to `L_w`.
//! 6. **Status** — `L_w` assembles its proposal and proof from `4f−1`
//!    statuses (or the certificate itself).

use super::cert::{Certificate, LeaderSigned, Lock, TimeoutMsg, VoteMsg};
use gcl_crypto::{Digest, MemoTag, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol, Strategy};
use gcl_types::{Config, Duration, Encode, ExternalValidity, PartyId, Value, View};
use std::collections::{BTreeMap, BTreeSet};

/// A status message `⟨status, w−1, C⟩_i` (Figure 3, step 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusMsg {
    /// The view this status reports on (the view just left, `w − 1`).
    pub view: View,
    /// The sender's highest certificate.
    pub cert: Certificate,
    /// The sender's signature.
    pub sig: Signature,
}

impl StatusMsg {
    fn digest(view: View, cert: &Certificate) -> Digest {
        Digest::of(&("psync-status", view, Digest::of(cert)))
    }

    /// Creates a signed status.
    pub fn new(signer: &Signer, view: View, cert: Certificate) -> Self {
        let sig = signer.sign(Self::digest(view, &cert));
        StatusMsg { view, cert, sig }
    }

    /// The sending party.
    pub fn sender(&self) -> PartyId {
        self.sig.signer()
    }

    /// Verifies the signature and the embedded certificate.
    ///
    /// The whole verdict is memoized on the verifier (tagged
    /// [`MemoTag::Status`]): a status re-delivered inside a
    /// [`Proof::Statuses`] bundle after arriving directly costs one cache
    /// lookup instead of a signature check plus a certificate re-walk —
    /// and in particular skips re-absorbing the certificate into
    /// [`Digest::of`]. Sound because every input to the verdict (config,
    /// validity predicate identity, and the full wire encoding of the
    /// status) is part of the key, and the verdict is a pure function of
    /// those inputs.
    pub fn verify(&self, config: Config, v: &impl Verify, validity: &ExternalValidity) -> bool {
        let name = validity.name().as_bytes();
        let mut key = MemoTag::Status.key(64 + name.len());
        key.extend_from_slice(&(config.n() as u64).to_le_bytes());
        key.extend_from_slice(&(config.f() as u64).to_le_bytes());
        key.extend_from_slice(&(name.len() as u64).to_le_bytes());
        key.extend_from_slice(name);
        self.encode(&mut key);
        v.memoized(key, || {
            v.verify_embedded(Self::digest(self.view, &self.cert), &self.sig)
                && self.cert.view() <= self.view
                && self.cert.is_valid(config, v, validity)
                && self.cert.lock(config).is_some()
        })
    }
}

/// The proposal's justification `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Proof {
    /// View 1: the broadcaster proposes its input, no proof needed.
    Bootstrap,
    /// A valid certificate of view `w − 1` locking the proposed value.
    Cert(Certificate),
    /// `4f−1` status messages of view `w − 1`; the highest certificate
    /// among them locks the proposed value.
    Statuses(Vec<StatusMsg>),
}

/// Wire messages of the `(5f−1)`-psync-VBB protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VbbMsg {
    /// Step 1.
    Propose {
        /// The leader-signed value-view pair.
        ls: LeaderSigned,
        /// The justification.
        proof: Proof,
    },
    /// Step 2.
    Vote(VoteMsg),
    /// Step 3: forwarded commit quorum.
    VoteBundle(Vec<VoteMsg>),
    /// Step 4.
    Timeout(TimeoutMsg),
    /// Step 5: forwarded view-change quorum.
    TimeoutBundle(Vec<TimeoutMsg>),
    /// Step 5 → 6.
    Status(StatusMsg),
}

gcl_types::wire_struct!(StatusMsg { view, cert, sig });

/// Wire codec: one tag byte per message kind / proof shape.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for Proof {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                Proof::Bootstrap => buf.push(1),
                Proof::Cert(c) => {
                    buf.push(2);
                    c.encode(buf);
                }
                Proof::Statuses(ss) => {
                    buf.push(3);
                    ss.encode(buf);
                }
            }
        }
    }

    impl Decode for Proof {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(Proof::Bootstrap),
                2 => Ok(Proof::Cert(Decode::decode(input)?)),
                3 => Ok(Proof::Statuses(Decode::decode(input)?)),
                tag => Err(WireError::BadTag { ty: "Proof", tag }),
            }
        }
    }

    impl Encode for VbbMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                VbbMsg::Propose { ls, proof } => {
                    buf.push(1);
                    ls.encode(buf);
                    proof.encode(buf);
                }
                VbbMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                VbbMsg::VoteBundle(vs) => {
                    buf.push(3);
                    vs.encode(buf);
                }
                VbbMsg::Timeout(t) => {
                    buf.push(4);
                    t.encode(buf);
                }
                VbbMsg::TimeoutBundle(ts) => {
                    buf.push(5);
                    ts.encode(buf);
                }
                VbbMsg::Status(s) => {
                    buf.push(6);
                    s.encode(buf);
                }
            }
        }
    }

    impl Decode for VbbMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(VbbMsg::Propose {
                    ls: Decode::decode(input)?,
                    proof: Decode::decode(input)?,
                }),
                2 => Ok(VbbMsg::Vote(Decode::decode(input)?)),
                3 => Ok(VbbMsg::VoteBundle(Decode::decode(input)?)),
                4 => Ok(VbbMsg::Timeout(Decode::decode(input)?)),
                5 => Ok(VbbMsg::TimeoutBundle(Decode::decode(input)?)),
                6 => Ok(VbbMsg::Status(Decode::decode(input)?)),
                tag => Err(WireError::BadTag { ty: "VbbMsg", tag }),
            }
        }
    }
}

/// Timer tag = view number (one timer armed per view entry).
const fn view_tag(view: View) -> u64 {
    view.number()
}

/// One party of the `(5f−1)`-psync-VBB protocol.
///
/// # Examples
///
/// The paper's highlighted special case `f = 1, n = 4`: PBFT needs 3 rounds,
/// this protocol commits in 2.
///
/// ```
/// use gcl_core::psync::VbbFiveFMinusOne;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{accept_all, Config, Duration, GlobalTime, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let chain = Keychain::generate(4, 2);
/// let delta = Duration::from_micros(100);
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::PartialSynchrony { gst: GlobalTime::ZERO, big_delta: delta })
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         VbbFiveFMinusOne::new(
///             cfg, chain.signer(p), chain.pki(), accept_all(), delta,
///             (p == PartyId::new(0)).then_some(Value::new(7)),
///         )
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(7)));
/// assert_eq!(outcome.good_case_rounds(), Some(2));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
pub struct VbbFiveFMinusOne {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    validity: ExternalValidity,
    big_delta: Duration,
    /// Broadcaster's input (`Some` iff this party leads view 1).
    input: Option<Value>,
    /// Proposed when leading a later view with only genesis locks around.
    fallback: Value,
    /// Late-bound alternative to [`fallback`](Self::fallback): consulted at
    /// the moment this party proposes as a late-view leader with nothing
    /// locked, so an embedding layer (e.g. an SMR slot engine rotating
    /// proposal rights) can substitute a *fresh* value — drained from its
    /// mempool — instead of a constant chosen at construction time.
    fallback_source: Option<Box<dyn FnMut(View) -> Value + Send>>,
    view: View,
    cert: Certificate,
    voted: Option<LeaderSigned>,
    timed_out: BTreeSet<View>,
    committed: bool,
    proposed: bool,
    votes: BTreeMap<(View, Value), BTreeMap<PartyId, VoteMsg>>,
    timeouts: BTreeMap<View, BTreeMap<PartyId, TimeoutMsg>>,
    statuses: BTreeMap<View, BTreeMap<PartyId, StatusMsg>>,
    pending: BTreeMap<View, (LeaderSigned, Proof)>,
}

impl VbbFiveFMinusOne {
    /// Creates the party-side state.
    ///
    /// `input` must be `Some` exactly at the designated broadcaster (the
    /// leader of view 1, i.e. party 0 under round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `n < 5f − 1` or `n < 3f + 1`, or if the input/role
    /// assignment is inconsistent, or if the broadcaster input fails the
    /// external validity predicate.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        validity: ExternalValidity,
        big_delta: Duration,
        input: Option<Value>,
    ) -> Self {
        assert!(
            config.supports_two_round_psync(),
            "(5f-1)-psync-VBB requires n >= 5f - 1"
        );
        assert!(config.supports_brb(), "psync-BB requires n >= 3f + 1");
        let is_first_leader = signer.id() == View::FIRST.leader(config.n());
        assert_eq!(
            input.is_some(),
            is_first_leader,
            "exactly the view-1 leader provides an input"
        );
        if let Some(v) = input {
            assert!(
                validity.check(v),
                "broadcaster input must be externally valid"
            );
        }
        let fallback = Value::new(1_000_000 + u64::from(signer.id().index()));
        VbbFiveFMinusOne {
            config,
            signer,
            verifier: verifier.into(),
            validity,
            big_delta,
            input,
            fallback,
            fallback_source: None,
            view: View::FIRST,
            cert: Certificate::Genesis,
            voted: None,
            timed_out: BTreeSet::new(),
            committed: false,
            proposed: false,
            votes: BTreeMap::new(),
            timeouts: BTreeMap::new(),
            statuses: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Overrides the value this party proposes as a late-view leader when
    /// nothing is locked (must be externally valid for progress).
    #[must_use]
    pub fn with_fallback(mut self, v: Value) -> Self {
        self.fallback = v;
        self
    }

    /// Installs a dynamic fallback: when this party proposes as a late-view
    /// leader and no value is locked, `source(view)` supplies the proposal
    /// instead of the static [`with_fallback`](Self::with_fallback) value.
    /// Every value the source returns must be externally valid.
    ///
    /// The source is consulted at most once per view led by this party, and
    /// only on the no-lock path — a locked value always wins, preserving
    /// the protocol's safety argument unchanged.
    #[must_use]
    pub fn with_fallback_source(
        mut self,
        source: impl FnMut(View) -> Value + Send + 'static,
    ) -> Self {
        self.fallback_source = Some(Box::new(source));
        self
    }

    fn me(&self) -> PartyId {
        self.signer.id()
    }

    fn q(&self) -> usize {
        self.config.quorum()
    }

    fn leader(&self, view: View) -> PartyId {
        view.leader(self.config.n())
    }

    // ----- Step 2: vote ---------------------------------------------------

    fn proof_justifies(&self, ls: &LeaderSigned, proof: &Proof) -> bool {
        match proof {
            Proof::Bootstrap => ls.view == View::FIRST,
            Proof::Cert(c) => {
                c.view() == ls.view.prev()
                    && c.is_valid(self.config, &self.verifier, &self.validity)
                    && c.lock(self.config).is_some_and(|l| l.permits(ls.value))
            }
            Proof::Statuses(statuses) => {
                let prev = ls.view.prev();
                let senders: BTreeSet<PartyId> = statuses.iter().map(StatusMsg::sender).collect();
                if senders.len() < self.q() || senders.len() != statuses.len() {
                    return false;
                }
                if !statuses.iter().all(|s| {
                    s.view == prev && s.verify(self.config, &self.verifier, &self.validity)
                }) {
                    return false;
                }
                let highest = statuses
                    .iter()
                    .map(|s| &s.cert)
                    .max_by_key(|c| c.view())
                    .expect("non-empty by quorum check");
                highest
                    .lock(self.config)
                    .is_some_and(|l| l.permits(ls.value))
            }
        }
    }

    fn maybe_vote(&mut self, ls: LeaderSigned, proof: Proof, ctx: &mut dyn Context<VbbMsg>) {
        if self.committed
            || ls.view != self.view
            || self.voted.is_some()
            || self.timed_out.contains(&ls.view)
        {
            return;
        }
        if !self.proof_justifies(&ls, &proof) {
            return;
        }
        self.voted = Some(ls);
        let vote = VoteMsg::new(&self.signer, ls);
        ctx.multicast(VbbMsg::Vote(vote));
    }

    // ----- Step 3: commit -------------------------------------------------

    fn record_vote(&mut self, vote: VoteMsg, ctx: &mut dyn Context<VbbMsg>) {
        let q = self.q();
        let key = (vote.ls.view, vote.ls.value);
        let bucket = self.votes.entry(key).or_default();
        bucket.insert(vote.voter(), vote);
        if !self.committed && bucket.len() >= q {
            self.committed = true;
            let bundle: Vec<VoteMsg> = bucket.values().copied().collect();
            ctx.multicast_except(VbbMsg::VoteBundle(bundle), self.me());
            ctx.commit(key.1);
            ctx.terminate();
        }
    }

    // ----- Step 4: timeout ------------------------------------------------

    fn send_own_timeout(&mut self, view: View, ctx: &mut dyn Context<VbbMsg>) {
        if !self.timed_out.insert(view) {
            return;
        }
        let tm = match self.voted {
            Some(ls) if ls.view == view => TimeoutMsg::val(&self.signer, ls),
            _ => TimeoutMsg::bot(&self.signer, view),
        };
        ctx.multicast(VbbMsg::Timeout(tm));
    }

    // ----- Step 5: new view -----------------------------------------------

    fn try_advance(&mut self, ctx: &mut dyn Context<VbbMsg>) {
        loop {
            if self.committed {
                return;
            }
            let w = self.view;
            let leader = self.leader(w);
            let Some(pool) = self.timeouts.get(&w) else {
                return;
            };
            let values: BTreeSet<Value> = pool.values().filter_map(TimeoutMsg::value).collect();
            let chosen: Vec<TimeoutMsg> = if values.len() <= 1 && pool.len() >= self.q() {
                pool.values().copied().collect()
            } else {
                // Leader equivocation visible: wait for a full quorum from
                // parties other than the leader.
                let non_leader: Vec<TimeoutMsg> = pool
                    .iter()
                    .filter(|(p, _)| **p != leader)
                    .map(|(_, t)| *t)
                    .collect();
                if non_leader.len() >= self.q() {
                    non_leader
                } else {
                    return;
                }
            };

            // Forward the quorum so laggards advance too.
            ctx.multicast_except(VbbMsg::TimeoutBundle(chosen.clone()), self.me());

            // Update the lock certificate if these timeouts lock a value.
            let cert = Certificate::assemble(w, chosen);
            if cert.is_valid(self.config, &self.verifier, &self.validity)
                && matches!(cert.lock(self.config), Some(Lock::Exactly(_)))
                && cert.ranks_above(&self.cert)
            {
                self.cert = cert;
            }

            // Timeout the old view if we haven't, then enter the new one.
            self.send_own_timeout(w, ctx);
            let new_view = w.next();
            self.view = new_view;
            self.voted = None;
            self.proposed = false;
            ctx.set_timer(self.big_delta * 4, view_tag(new_view));

            let status = StatusMsg::new(&self.signer, w, self.cert.clone());
            ctx.send(self.leader(new_view), VbbMsg::Status(status));

            if let Some((ls, proof)) = self.pending.remove(&new_view) {
                self.maybe_vote(ls, proof, ctx);
            }
            if self.leader(new_view) == self.me() {
                self.try_propose(ctx);
            }
            // Maybe timeouts for the new view already suffice — loop.
        }
    }

    // ----- Amortized re-delivery checks ------------------------------------
    //
    // Each helper first compares the incoming message byte-for-byte against
    // the copy already recorded for the same slot. Equality means the exact
    // message was verified when it was first recorded, so the verdict is
    // `true` without touching the verifier. A *different* message in the
    // same slot (possible from a Byzantine sender — e.g. two valid timeouts
    // for one view) falls through to full verification, preserving the
    // original overwrite semantics of `BTreeMap::insert`.

    fn vote_checks(&self, vote: &VoteMsg) -> bool {
        let recorded = self
            .votes
            .get(&(vote.ls.view, vote.ls.value))
            .and_then(|m| m.get(&vote.voter()));
        match recorded {
            Some(r) if r == vote => true,
            _ => vote.verify(self.config, &self.verifier) && self.validity.check(vote.ls.value),
        }
    }

    fn timeout_checks(&self, tm: &TimeoutMsg) -> bool {
        let recorded = self
            .timeouts
            .get(&tm.view())
            .and_then(|m| m.get(&tm.sender()));
        match recorded {
            Some(r) if r == tm => true,
            _ => tm.verify(self.config, &self.verifier, &self.validity),
        }
    }

    fn status_checks(&self, st: &StatusMsg) -> bool {
        let recorded = self
            .statuses
            .get(&st.view)
            .and_then(|m| m.get(&st.sender()));
        match recorded {
            Some(r) if r == st => true,
            _ => st.verify(self.config, &self.verifier, &self.validity),
        }
    }

    // ----- Step 6: status / propose ----------------------------------------

    fn try_propose(&mut self, ctx: &mut dyn Context<VbbMsg>) {
        if self.committed || self.proposed || self.leader(self.view) != self.me() {
            return;
        }
        let w = self.view;
        if w == View::FIRST {
            let v = self.input.expect("view-1 leader has an input");
            let ls = LeaderSigned::new(&self.signer, v, w);
            self.proposed = true;
            self.voted = Some(ls);
            let vote = VoteMsg::new(&self.signer, ls);
            ctx.multicast(VbbMsg::Propose {
                ls,
                proof: Proof::Bootstrap,
            });
            ctx.multicast(VbbMsg::Vote(vote));
            return;
        }
        let prev = w.prev();
        let Some(pool) = self.statuses.get(&prev) else {
            return;
        };
        if pool.len() < self.q() {
            return;
        }
        let (value, proof) = if self.cert.view() == prev {
            let v = match self.cert.lock(self.config) {
                Some(Lock::Exactly(v)) => v,
                _ => unreachable!("assembled certs are stored only when they lock"),
            };
            (v, Proof::Cert(self.cert.clone()))
        } else {
            let statuses: Vec<StatusMsg> = pool.values().cloned().collect();
            let highest = statuses
                .iter()
                .map(|s| &s.cert)
                .max_by_key(|c| c.view())
                .expect("quorum checked");
            let v = match highest.lock(self.config) {
                Some(Lock::Exactly(v)) => v,
                _ => match self.fallback_source.as_mut() {
                    Some(source) => source(w),
                    None => self.fallback,
                },
            };
            (v, Proof::Statuses(statuses))
        };
        let ls = LeaderSigned::new(&self.signer, value, w);
        self.proposed = true;
        self.voted = Some(ls);
        let vote = VoteMsg::new(&self.signer, ls);
        ctx.multicast(VbbMsg::Propose { ls, proof });
        ctx.multicast(VbbMsg::Vote(vote));
    }
}

// Manual impl: the optional fallback-source closure is not `Debug`.
impl std::fmt::Debug for VbbFiveFMinusOne {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VbbFiveFMinusOne")
            .field("me", &self.signer.id())
            .field("view", &self.view)
            .field("committed", &self.committed)
            .field("proposed", &self.proposed)
            .field("fallback", &self.fallback)
            .field("dynamic_fallback", &self.fallback_source.is_some())
            .finish_non_exhaustive()
    }
}

impl Protocol for VbbFiveFMinusOne {
    type Msg = VbbMsg;

    fn start(&mut self, ctx: &mut dyn Context<VbbMsg>) {
        ctx.set_timer(self.big_delta * 4, view_tag(View::FIRST));
        if self.leader(View::FIRST) == self.me() {
            self.try_propose(ctx);
        }
    }

    fn on_message(&mut self, from: PartyId, msg: VbbMsg, ctx: &mut dyn Context<VbbMsg>) {
        if self.committed {
            return;
        }
        match msg {
            VbbMsg::Propose { ls, proof } => {
                if from != self.leader(ls.view)
                    || !ls.verify(self.config, &self.verifier)
                    || !self.validity.check(ls.value)
                {
                    return;
                }
                if ls.view > self.view {
                    self.pending.entry(ls.view).or_insert((ls, proof));
                } else {
                    self.maybe_vote(ls, proof, ctx);
                }
            }
            VbbMsg::Vote(vote) => {
                if self.vote_checks(&vote) {
                    self.record_vote(vote, ctx);
                }
            }
            VbbMsg::VoteBundle(votes) => {
                for vote in votes {
                    if self.vote_checks(&vote) {
                        self.record_vote(vote, ctx);
                        if self.committed {
                            break;
                        }
                    }
                }
            }
            VbbMsg::Timeout(tm) => {
                if tm.view() >= self.view && self.timeout_checks(&tm) {
                    self.timeouts
                        .entry(tm.view())
                        .or_default()
                        .insert(tm.sender(), tm);
                    self.try_advance(ctx);
                }
            }
            VbbMsg::TimeoutBundle(tms) => {
                let mut touched = false;
                for tm in tms {
                    if tm.view() >= self.view && self.timeout_checks(&tm) {
                        self.timeouts
                            .entry(tm.view())
                            .or_default()
                            .insert(tm.sender(), tm);
                        touched = true;
                    }
                }
                if touched {
                    self.try_advance(ctx);
                }
            }
            VbbMsg::Status(st) => {
                if self.status_checks(&st) {
                    self.statuses
                        .entry(st.view)
                        .or_default()
                        .insert(st.sender(), st);
                    self.try_propose(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<VbbMsg>) {
        if self.committed {
            return;
        }
        let view = View::new(tag);
        if view == self.view {
            self.send_own_timeout(view, ctx);
            self.try_advance(ctx);
        }
    }
}

/// Byzantine view-1 leader that equivocates: proposes `value_a` (with a
/// valid bootstrap proof) to `group_a` and `value_b` to everyone else, then
/// goes silent — the canonical psync adversary.
#[derive(Debug)]
pub struct EquivocatingLeader {
    /// This leader's signer (it can only sign for itself).
    pub signer: Signer,
    /// Recipients of `value_a`.
    pub group_a: Vec<PartyId>,
    /// Value proposed to `group_a`.
    pub value_a: Value,
    /// Value proposed to the rest.
    pub value_b: Value,
}

impl Strategy<VbbMsg> for EquivocatingLeader {
    fn start(&mut self, ctx: &mut dyn Context<VbbMsg>) {
        let w = View::FIRST;
        let ls_a = LeaderSigned::new(&self.signer, self.value_a, w);
        let ls_b = LeaderSigned::new(&self.signer, self.value_b, w);
        for p in ctx.config().parties().collect::<Vec<_>>() {
            if p == self.signer.id() {
                continue;
            }
            let ls = if self.group_a.contains(&p) {
                ls_a
            } else {
                ls_b
            };
            ctx.send(
                p,
                VbbMsg::Propose {
                    ls,
                    proof: Proof::Bootstrap,
                },
            );
        }
    }
    fn on_message(&mut self, _from: PartyId, _msg: VbbMsg, _ctx: &mut dyn Context<VbbMsg>) {}
    fn on_timer(&mut self, _tag: u64, _ctx: &mut dyn Context<VbbMsg>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{
        DelayRule, FixedDelay, LinkDelay, Outcome, PartySet, ScheduleOracle, Silent, Simulation,
        TimingModel,
    };
    use gcl_types::{accept_all, GlobalTime};
    use std::sync::Arc;

    const DELTA: Duration = Duration::from_micros(100);

    fn psync_gst0() -> TimingModel {
        TimingModel::PartialSynchrony {
            gst: GlobalTime::ZERO,
            big_delta: DELTA,
        }
    }

    fn good_case(n: usize, f: usize) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 20);
        Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(11)),
                )
            })
            .run()
    }

    #[test]
    fn good_case_two_rounds_at_5f_minus_1() {
        for (n, f) in [(4, 1), (9, 2), (14, 3), (24, 5)] {
            let o = good_case(n, f);
            assert!(o.validity_holds(Value::new(11)), "n={n} f={f}");
            assert!(o.all_honest_terminated());
            assert_eq!(o.good_case_rounds(), Some(2), "n={n} f={f}: 2 rounds");
        }
    }

    #[test]
    fn good_case_latency_two_message_delays() {
        let o = good_case(4, 1);
        assert_eq!(o.good_case_latency(), Some(DELTA * 2));
    }

    #[test]
    fn silent_leader_view_change_converges() {
        let n = 9;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, 21);
        let o = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(cfg, chain.signer(p), chain.pki(), accept_all(), DELTA, None)
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "termination after GST");
        // The view-2 leader (P1) proposed its fallback.
        assert_eq!(o.committed_value(), Some(Value::new(1_000_001)));
    }

    #[test]
    fn fallback_source_supplies_the_late_view_proposal() {
        // Same silent-leader schedule, but the view-2 leader carries a
        // dynamic fallback source: the converged value must come from the
        // source (stamped with the view it was asked for), and parties
        // without a source must be unaffected.
        let n = 9;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, 23);
        let asked: Arc<std::sync::Mutex<Vec<View>>> = Arc::default();
        let log = Arc::clone(&asked);
        let o = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(move |p| {
                let vbb = VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    None,
                );
                if p == PartyId::new(1) {
                    let log = Arc::clone(&log);
                    vbb.with_fallback_source(move |view| {
                        log.lock().unwrap().push(view);
                        Value::new(7_000 + view.number())
                    })
                } else {
                    vbb
                }
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(7_002)));
        assert_eq!(
            asked.lock().unwrap().as_slice(),
            &[View::new(2)],
            "the source is consulted exactly once, for the view being led"
        );
    }

    #[test]
    fn equivocating_leader_safe_and_live() {
        let n = 9;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, 22);
        let group_a: Vec<PartyId> = (1..=4).map(PartyId::new).collect();
        let o = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .byzantine(
                PartyId::new(0),
                EquivocatingLeader {
                    signer: chain.signer(PartyId::new(0)),
                    group_a,
                    value_a: Value::ZERO,
                    value_b: Value::ONE,
                },
            )
            .byzantine(PartyId::new(8), Silent::new())
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(cfg, chain.signer(p), chain.pki(), accept_all(), DELTA, None)
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
    }

    #[test]
    fn lone_committer_protected_across_view_change() {
        // Pre-GST scheduling: all votes reach only P1, which commits v in
        // view 1; everyone else times out into view 2. The view-change lock
        // must force the view-2 leader to re-propose v.
        let n = 9;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, 23);
        let gst = GlobalTime::from_micros(100_000);
        let far = Duration::from_micros(200_000);
        let oracle: ScheduleOracle<VbbMsg> = ScheduleOracle::new(Duration::from_micros(10))
            // Votes to anyone but P1 are held until GST.
            .rule(
                DelayRule::link(
                    PartySet::Any,
                    PartySet::In((2..9).map(PartyId::new).collect()),
                    LinkDelay::Finite(far),
                )
                .when(|m: &VbbMsg| matches!(m, VbbMsg::Vote(_))),
            )
            // P1's own outbound messages (inc. its commit VoteBundle) are
            // held too, so nobody else commits via view 1.
            .rule(DelayRule::link(
                PartySet::One(PartyId::new(1)),
                PartySet::Any,
                LinkDelay::Finite(far),
            ));
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst,
                big_delta: DELTA,
            })
            .oracle(oracle)
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(11)),
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(
            o.committed_value(),
            Some(Value::new(11)),
            "lock carried the committed value through the view change"
        );
        // P1 committed in view 1 (fast), others later.
        let c1 = o.commit_of(PartyId::new(1)).unwrap();
        assert!(c1.global < gst);
    }

    #[test]
    fn external_validity_filters_proposals() {
        // Broadcaster proposes an invalid value (only possible for a
        // Byzantine one — simulate by predicate that rejects it): honest
        // parties never vote for it; view change; the next leader's
        // fallback must satisfy the predicate, and then gets committed.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 24);
        let validity = ExternalValidity::new("under-1000", |v: Value| v.as_u64() < 1_000);
        let signer0 = chain.signer(PartyId::new(0));
        let bad = LeaderSigned::new(&signer0, Value::new(5_000), View::FIRST);
        let script = gcl_sim::Scripted::multicast_at(
            gcl_types::LocalTime::ZERO,
            &[PartyId::new(1), PartyId::new(2), PartyId::new(3)],
            VbbMsg::Propose {
                ls: bad,
                proof: Proof::Bootstrap,
            },
        );
        let o = Simulation::build(cfg)
            .timing(psync_gst0())
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .byzantine(PartyId::new(0), script)
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    validity.clone(),
                    DELTA,
                    None,
                )
                .with_fallback(Value::new(42))
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(42)));
    }

    #[test]
    fn late_gst_still_terminates() {
        // Fully adversarial delays before GST (everything held), honest
        // leader: parties churn through timeouts but must commit after GST.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 25);
        let gst = GlobalTime::from_micros(2_000);
        let oracle: ScheduleOracle<VbbMsg> =
            ScheduleOracle::new(Duration::ZERO).rule(DelayRule::link(
                PartySet::Any,
                PartySet::Any,
                LinkDelay::Never, // pre-GST: held until the clamp (GST + Δ)
            ));
        let o = Simulation::build(cfg)
            .timing(TimingModel::PartialSynchrony {
                gst,
                big_delta: DELTA,
            })
            .oracle(oracle)
            .spawn_honest(|p| {
                VbbFiveFMinusOne::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    accept_all(),
                    DELTA,
                    (p == PartyId::new(0)).then_some(Value::new(3)),
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "termination after GST");
    }

    #[test]
    #[should_panic(expected = "n >= 5f - 1")]
    fn resilience_boundary_rejected() {
        // n = 8 = 5f − 2 with f = 2 must be rejected: Theorem 7 says no
        // 2-round protocol exists there.
        let cfg = Config::new(8, 2).unwrap();
        let chain = Keychain::generate(8, 1);
        let _ = VbbFiveFMinusOne::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            accept_all(),
            DELTA,
            Some(Value::ZERO),
        );
    }

    #[test]
    fn status_msg_verify() {
        let cfg = Config::new(9, 2).unwrap();
        let chain = Keychain::generate(9, 26);
        let st = StatusMsg::new(
            &chain.signer(PartyId::new(3)),
            View::FIRST,
            Certificate::Genesis,
        );
        assert!(st.verify(cfg, &chain.pki(), &accept_all()));
        assert_eq!(st.sender(), PartyId::new(3));
        // Cert with view above the status view is rejected.
        let bad = StatusMsg::new(
            &chain.signer(PartyId::new(3)),
            View::ZERO,
            Certificate::assemble(View::new(5), vec![]),
        );
        assert!(!bad.verify(cfg, &chain.pki(), &accept_all()));
    }
}
