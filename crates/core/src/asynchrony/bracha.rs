//! Bracha's reliable broadcast (1987) — the classical unauthenticated
//! baseline, good-case latency **3 rounds**.
//!
//! The paper's conclusion notes the asynchronous unauthenticated gap: the
//! 2-round lower bound vs the 3-round upper bound implied by this protocol.
//! We implement it to measure that 3-round good case next to the 2-round
//! authenticated protocol of Figure 1.
//!
//! Echo on the first proposal; ready on `n−f` echoes or `f+1` readies;
//! deliver (commit) on `n−f` readies. `n ≥ 3f + 1`.

use gcl_sim::{Context, Protocol};
use gcl_types::{Config, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Wire messages of Bracha's broadcast. Unauthenticated: no signatures;
/// identity comes from the (authenticated-channel) sender id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrachaMsg {
    /// The broadcaster's proposal.
    Send(Value),
    /// First-phase echo.
    Echo(Value),
    /// Second-phase ready.
    Ready(Value),
}

/// Wire codec: one tag byte per phase.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for BrachaMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            let (tag, v) = match self {
                BrachaMsg::Send(v) => (1, v),
                BrachaMsg::Echo(v) => (2, v),
                BrachaMsg::Ready(v) => (3, v),
            };
            buf.push(tag);
            v.encode(buf);
        }
    }

    impl Decode for BrachaMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            let tag = u8::decode(input)?;
            let v = Value::decode(input)?;
            match tag {
                1 => Ok(BrachaMsg::Send(v)),
                2 => Ok(BrachaMsg::Echo(v)),
                3 => Ok(BrachaMsg::Ready(v)),
                tag => Err(WireError::BadTag {
                    ty: "BrachaMsg",
                    tag,
                }),
            }
        }
    }
}

/// One party of Bracha's reliable broadcast.
///
/// # Examples
///
/// ```
/// use gcl_core::asynchrony::BrachaBrb;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Asynchrony)
///     .oracle(FixedDelay::new(Duration::from_micros(50)))
///     .spawn_honest(|p| {
///         BrachaBrb::new(cfg, p, PartyId::new(0),
///                        (p == PartyId::new(0)).then_some(Value::new(1)))
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(1)));
/// assert_eq!(outcome.good_case_rounds(), Some(3)); // one slower than Fig 1
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct BrachaBrb {
    config: Config,
    me: PartyId,
    broadcaster: PartyId,
    input: Option<Value>,
    echoed: bool,
    readied: bool,
    committed: bool,
    echoes: BTreeMap<Value, BTreeSet<PartyId>>,
    readies: BTreeMap<Value, BTreeSet<PartyId>>,
}

impl BrachaBrb {
    /// Creates the party-side state; `input` is `Some` only at the
    /// broadcaster.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3f + 1` or the input/broadcaster roles disagree.
    pub fn new(config: Config, me: PartyId, broadcaster: PartyId, input: Option<Value>) -> Self {
        assert!(config.supports_brb(), "Bracha requires n >= 3f + 1");
        assert_eq!(input.is_some(), me == broadcaster);
        BrachaBrb {
            config,
            me,
            broadcaster,
            input,
            echoed: false,
            readied: false,
            committed: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
        }
    }

    fn send_ready(&mut self, v: Value, ctx: &mut dyn Context<BrachaMsg>) {
        if !self.readied {
            self.readied = true;
            ctx.multicast(BrachaMsg::Ready(v));
        }
    }

    fn check_progress(&mut self, v: Value, ctx: &mut dyn Context<BrachaMsg>) {
        let n = self.config.n();
        let f = self.config.f();
        let echo_quorum = n - f;
        let ready_amplify = f + 1;
        let deliver_quorum = n - f;

        if self.echoes.get(&v).map_or(0, BTreeSet::len) >= echo_quorum {
            self.send_ready(v, ctx);
        }
        let readies = self.readies.get(&v).map_or(0, BTreeSet::len);
        if readies >= ready_amplify {
            self.send_ready(v, ctx);
        }
        if readies >= deliver_quorum && !self.committed {
            self.committed = true;
            ctx.commit(v);
            ctx.terminate();
        }
    }

    /// Whether this party has delivered (committed).
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// This party's id.
    pub fn id(&self) -> PartyId {
        self.me
    }
}

impl Protocol for BrachaBrb {
    type Msg = BrachaMsg;

    fn start(&mut self, ctx: &mut dyn Context<BrachaMsg>) {
        if let Some(v) = self.input {
            ctx.multicast(BrachaMsg::Send(v));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: BrachaMsg, ctx: &mut dyn Context<BrachaMsg>) {
        match msg {
            BrachaMsg::Send(v) => {
                if from == self.broadcaster && !self.echoed {
                    self.echoed = true;
                    ctx.multicast(BrachaMsg::Echo(v));
                }
            }
            BrachaMsg::Echo(v) => {
                self.echoes.entry(v).or_default().insert(from);
                self.check_progress(v, ctx);
            }
            BrachaMsg::Ready(v) => {
                self.readies.entry(v).or_default().insert(from);
                self.check_progress(v, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{FixedDelay, Outcome, Scripted, Silent, Simulation, TimingModel};
    use gcl_types::{Duration, LocalTime};

    const DELAY: Duration = Duration::from_micros(100);

    fn good_case(n: usize, f: usize) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .spawn_honest(|p| {
                BrachaBrb::new(
                    cfg,
                    p,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(2)),
                )
            })
            .run()
    }

    #[test]
    fn good_case_three_rounds() {
        for (n, f) in [(4, 1), (7, 2), (10, 3)] {
            let o = good_case(n, f);
            assert!(o.validity_holds(Value::new(2)), "n={n}");
            assert_eq!(o.good_case_rounds(), Some(3), "n={n}: Bracha is 3 rounds");
        }
    }

    #[test]
    fn one_round_slower_than_authenticated() {
        // The headline asynchronous comparison: Fig 1 = 2 rounds,
        // Bracha = 3 rounds (same n, f, delays).
        use crate::asynchrony::TwoRoundBrb;
        use gcl_crypto::Keychain;
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 3);
        let auth = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .spawn_honest(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(2)),
                )
            })
            .run();
        let unauth = good_case(4, 1);
        assert_eq!(auth.good_case_rounds(), Some(2));
        assert_eq!(unauth.good_case_rounds(), Some(3));
        assert!(auth.good_case_latency().unwrap() < unauth.good_case_latency().unwrap());
    }

    #[test]
    fn equivocation_cannot_split() {
        // Byzantine broadcaster sends 0 to one party and 1 to the rest:
        // neither side reaches the n−f echo quorum both ways.
        let cfg = Config::new(4, 1).unwrap();
        let script = Scripted::new(vec![
            gcl_sim::ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(1),
                msg: BrachaMsg::Send(Value::ZERO),
            },
            gcl_sim::ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(2),
                msg: BrachaMsg::Send(Value::ONE),
            },
            gcl_sim::ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(3),
                msg: BrachaMsg::Send(Value::ONE),
            },
        ]);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(PartyId::new(0), script)
            .spawn_honest(|p| BrachaBrb::new(cfg, p, PartyId::new(0), None))
            .run();
        o.assert_agreement();
    }

    #[test]
    fn totality_all_or_none() {
        // If any honest party delivers, all honest parties deliver (ready
        // amplification). Crash the broadcaster right after its sends reach
        // only a quorum: either everyone commits or no one does.
        let cfg = Config::new(4, 1).unwrap();
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| BrachaBrb::new(cfg, p, PartyId::new(0), None))
            .run();
        let committed = o.honest_commits().count();
        assert!(committed == 0 || committed == 3);
    }

    #[test]
    fn accessors() {
        let cfg = Config::new(4, 1).unwrap();
        let b = BrachaBrb::new(cfg, PartyId::new(1), PartyId::new(0), None);
        assert!(!b.is_committed());
        assert_eq!(b.id(), PartyId::new(1));
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn resilience_check() {
        let cfg = Config::new(3, 1).unwrap();
        let _ = BrachaBrb::new(cfg, PartyId::new(0), PartyId::new(0), Some(Value::ZERO));
    }
}
