//! Figure 1: the 2-round Byzantine reliable broadcast, `n ≥ 3f + 1`.
//!
//! ```text
//! (1) Propose. The broadcaster L with input v sends ⟨propose, v⟩ to all.
//! (2) Vote.    On the first proposal ⟨propose, v⟩ from the broadcaster,
//!              send ⟨vote, v⟩_i to all parties.
//! (3) Commit.  On n−f signed votes for v, forward them to all other
//!              parties, commit v and terminate.
//! ```
//!
//! Good-case latency is exactly 2 asynchronous rounds (propose → vote →
//! commit), which Theorem 4 shows is optimal: no BRB can commit in 1 round.

use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol, Strategy};
use gcl_types::{Config, PartyId, Value};
use std::collections::{BTreeMap, HashMap};

/// A vote `⟨vote, v⟩_i`: value plus the voter's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedVote {
    /// The voted value.
    pub value: Value,
    /// The voter's signature over `("brb2-vote", value)`.
    pub sig: Signature,
}

impl SignedVote {
    /// The digest a brb2 vote signs.
    pub fn digest(value: Value) -> Digest {
        Digest::of(&("brb2-vote", value))
    }

    /// Creates a vote signed by `signer`.
    pub fn new(signer: &Signer, value: Value) -> Self {
        SignedVote {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    /// Verifies the signature.
    pub fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Wire messages of the 2-round BRB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Brb2Msg {
    /// Step 1: the broadcaster's proposal.
    Propose(Value),
    /// Step 2: a signed vote.
    Vote(SignedVote),
    /// Step 3: the forwarded quorum of votes that justified a commit.
    Forward(Vec<SignedVote>),
}

gcl_types::wire_struct!(SignedVote { value, sig });

/// Wire codec: one tag byte per protocol step.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for Brb2Msg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                Brb2Msg::Propose(v) => {
                    buf.push(1);
                    v.encode(buf);
                }
                Brb2Msg::Vote(vote) => {
                    buf.push(2);
                    vote.encode(buf);
                }
                Brb2Msg::Forward(votes) => {
                    buf.push(3);
                    votes.encode(buf);
                }
            }
        }
    }

    impl Decode for Brb2Msg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(Brb2Msg::Propose(Decode::decode(input)?)),
                2 => Ok(Brb2Msg::Vote(Decode::decode(input)?)),
                3 => Ok(Brb2Msg::Forward(Decode::decode(input)?)),
                tag => Err(WireError::BadTag { ty: "Brb2Msg", tag }),
            }
        }
    }
}

/// The Figure-1 protocol for one party.
///
/// # Examples
///
/// Run the good case on `n = 4, f = 1` and observe the 2-round commit:
///
/// ```
/// use gcl_core::asynchrony::TwoRoundBrb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let chain = Keychain::generate(4, 1);
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Asynchrony)
///     .oracle(FixedDelay::new(Duration::from_micros(50)))
///     .spawn_honest(|p| {
///         TwoRoundBrb::new(
///             cfg,
///             chain.signer(p),
///             chain.pki(),
///             PartyId::new(0),
///             (p == PartyId::new(0)).then_some(Value::new(42)),
///         )
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(42)));
/// assert_eq!(outcome.good_case_rounds(), Some(2));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct TwoRoundBrb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    broadcaster: PartyId,
    /// `Some` iff this party is the broadcaster.
    input: Option<Value>,
    voted: bool,
    committed: bool,
    /// Per-value tally: one outer lookup per vote serves the digest memo,
    /// the presence check, the byte-equality reference for the
    /// duplicate-skip, and the bundle source.
    votes: BTreeMap<Value, ValueState>,
}

/// Everything this party tracks about one candidate value.
#[derive(Debug)]
struct ValueState {
    /// The vote digest — one SHA-256, memoized so re-checking a vote costs
    /// a field read, not a hash.
    digest: Digest,
    /// Recorded votes keyed by voter. A `HashMap` (recording is the hot
    /// path at quorum scale); the Forward bundle is sorted by voter at
    /// commit time, so wire bytes stay independent of hash order.
    voters: HashMap<PartyId, SignedVote>,
}

impl ValueState {
    fn new(value: Value) -> Self {
        ValueState {
            digest: SignedVote::digest(value),
            voters: HashMap::new(),
        }
    }
}

impl TwoRoundBrb {
    /// Creates the party-side state.
    ///
    /// `input` must be `Some` exactly when `signer.id() == broadcaster`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3f + 1` (the protocol's resilience requirement), or if
    /// `input` presence disagrees with the broadcaster role.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert!(config.supports_brb(), "2-round BRB requires n >= 3f + 1");
        assert_eq!(
            input.is_some(),
            signer.id() == broadcaster,
            "exactly the broadcaster provides an input"
        );
        TwoRoundBrb {
            config,
            signer,
            verifier: verifier.into(),
            broadcaster,
            input,
            voted: false,
            committed: false,
            votes: BTreeMap::new(),
        }
    }

    fn quorum(&self) -> usize {
        self.config.quorum()
    }

    /// Commits `value` given `recorded` votes for it (the caller's tally
    /// count, saving a second map walk on the per-vote hot path).
    fn try_commit(&mut self, value: Value, recorded: usize, ctx: &mut dyn Context<Brb2Msg>) {
        if self.committed || recorded < self.quorum() {
            return;
        }
        self.committed = true;
        let mut bundle: Vec<SignedVote> = self.votes[&value].voters.values().copied().collect();
        // Hash order is arbitrary; sort once so the Forward bundle's wire
        // bytes are deterministic (ascending voter, the old BTreeMap order).
        bundle.sort_unstable_by_key(SignedVote::voter);
        ctx.multicast_except(Brb2Msg::Forward(bundle), ctx.me());
        ctx.commit(value);
        ctx.terminate();
    }
}

impl Protocol for TwoRoundBrb {
    type Msg = Brb2Msg;

    fn start(&mut self, ctx: &mut dyn Context<Brb2Msg>) {
        if let Some(v) = self.input {
            ctx.multicast(Brb2Msg::Propose(v));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: Brb2Msg, ctx: &mut dyn Context<Brb2Msg>) {
        match msg {
            Brb2Msg::Propose(v) => {
                // Step 2: vote for the first proposal from the broadcaster.
                if from == self.broadcaster && !self.voted {
                    self.voted = true;
                    ctx.multicast(Brb2Msg::Vote(SignedVote::new(&self.signer, v)));
                }
            }
            Brb2Msg::Vote(vote) => {
                let value = vote.value;
                let st = self
                    .votes
                    .entry(value)
                    .or_insert_with(|| ValueState::new(value));
                if !self.verifier.verify_embedded(st.digest, &vote.sig) {
                    return;
                }
                st.voters.entry(vote.voter()).or_insert(vote);
                let recorded = st.voters.len();
                if recorded == 8 {
                    // This value is plausibly headed for quorum: pre-size the
                    // tally once instead of paying log(q) rehash-growths. Not
                    // done at creation — a spam value with a handful of votes
                    // stays a handful of slots.
                    st.voters.reserve(self.config.quorum());
                }
                self.try_commit(value, recorded, ctx);
            }
            Brb2Msg::Forward(bundle) => {
                // A committed party's quorum: adopt every vote. Votes we
                // already recorded are skipped *before* any MAC work:
                // byte-equality with the recorded (verified) vote carries
                // its verdict, and a *differing* signature for the same
                // (voter, value) cannot be valid — MACs are deterministic,
                // so exactly one valid signature exists per pair — which
                // rejects the bundle exactly as full verification would.
                let Some(first) = bundle.first() else { return };
                let value = first.value;
                let st = self
                    .votes
                    .entry(value)
                    .or_insert_with(|| ValueState::new(value));
                for v in &bundle {
                    if v.value != value {
                        return;
                    }
                    match st.voters.get(&v.voter()) {
                        Some(recorded) if recorded == v => {}
                        Some(_) => return,
                        None => {
                            if !self.verifier.verify_embedded(st.digest, &v.sig) {
                                return;
                            }
                        }
                    }
                }
                let mut recorded = 0;
                for vote in bundle {
                    st.voters.entry(vote.voter()).or_insert(vote);
                    recorded = st.voters.len();
                }
                self.try_commit(value, recorded, ctx);
            }
        }
    }
}

/// Byzantine broadcaster that proposes `value_a` to the listed parties and
/// `value_b` to everyone else — the Theorem 4 adversary.
#[derive(Debug)]
pub struct EquivocatingBroadcaster {
    /// Parties receiving `value_a`.
    pub group_a: Vec<PartyId>,
    /// Proposal for `group_a`.
    pub value_a: Value,
    /// Proposal for everyone else.
    pub value_b: Value,
}

impl Strategy<Brb2Msg> for EquivocatingBroadcaster {
    fn start(&mut self, ctx: &mut dyn Context<Brb2Msg>) {
        for p in ctx.config().parties().collect::<Vec<_>>() {
            let v = if self.group_a.contains(&p) {
                self.value_a
            } else {
                self.value_b
            };
            ctx.send(p, Brb2Msg::Propose(v));
        }
    }
    fn on_message(&mut self, _from: PartyId, _msg: Brb2Msg, _ctx: &mut dyn Context<Brb2Msg>) {}
    fn on_timer(&mut self, _tag: u64, _ctx: &mut dyn Context<Brb2Msg>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Silent, Simulation, TimingModel};
    use gcl_types::Duration;

    const DELAY: Duration = Duration::from_micros(100);

    fn good_case(n: usize, f: usize) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 7);
        Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .spawn_honest(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(9)),
                )
            })
            .run()
    }

    #[test]
    fn good_case_commits_in_two_rounds() {
        for (n, f) in [(4, 1), (7, 2), (10, 3), (13, 4)] {
            let o = good_case(n, f);
            assert!(o.validity_holds(Value::new(9)), "n={n}");
            assert!(o.all_honest_terminated());
            assert_eq!(o.good_case_rounds(), Some(2), "n={n} must be 2 rounds");
        }
    }

    #[test]
    fn good_case_latency_is_two_deltas() {
        let o = good_case(4, 1);
        assert_eq!(o.good_case_latency(), Some(DELAY * 2));
    }

    #[test]
    fn equivocating_broadcaster_cannot_split() {
        // n = 4, f = 1: the broadcaster equivocates 0 / 1. Neither value can
        // gather n − f = 3 honest votes (only 3 honest voters split 2/1 or
        // 1/2), so no honest party commits — agreement trivially holds,
        // which is all BRB requires with a Byzantine broadcaster.
        let n = 4;
        let cfg = Config::new(n, 1).unwrap();
        let chain = Keychain::generate(n, 8);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(
                PartyId::new(0),
                EquivocatingBroadcaster {
                    group_a: vec![PartyId::new(1)],
                    value_a: Value::ZERO,
                    value_b: Value::ONE,
                },
            )
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        o.assert_agreement();
        assert!(o.honest_commits().next().is_none());
    }

    #[test]
    fn equivocation_with_larger_n_still_safe() {
        // n = 7, f = 2: broadcaster + one double-voting slot silent; honest
        // majority may commit one side, never both.
        let n = 7;
        let cfg = Config::new(n, 2).unwrap();
        let chain = Keychain::generate(n, 9);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(
                PartyId::new(0),
                EquivocatingBroadcaster {
                    group_a: vec![PartyId::new(1), PartyId::new(2)],
                    value_a: Value::ZERO,
                    value_b: Value::ONE,
                },
            )
            .byzantine(PartyId::new(6), Silent::new())
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        o.assert_agreement();
    }

    #[test]
    fn silent_broadcaster_no_commit_is_fine() {
        // BRB termination is conditional; with a silent broadcaster nobody
        // commits and nobody violates anything.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 10);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        assert!(o.honest_commits().next().is_none());
    }

    #[test]
    fn forward_skips_recorded_votes_before_verifying() {
        // Delay votes from parties 2 and 3 toward party 1, so party 1 holds
        // two recorded votes (its own and party 0's) when the first Forward
        // bundle arrives. The recorded entries must be skipped by byte
        // equality *before* any verifier work: the probe sees at most one
        // MAC per distinct voter and zero cache hits — bundled duplicates
        // never reach the verifier at all.
        use gcl_crypto::{Verifier, VerifyProbe};
        use gcl_sim::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
        use std::sync::Arc;
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 12);
        let probe = Arc::new(VerifyProbe::new());
        let oracle: ScheduleOracle<Brb2Msg> = ScheduleOracle::new(DELAY).rule(
            DelayRule::link(
                PartySet::In(vec![PartyId::new(2), PartyId::new(3)]),
                PartySet::One(PartyId::new(1)),
                LinkDelay::Finite(Duration::from_millis(900)),
            )
            .when(|m: &Brb2Msg| matches!(m, Brb2Msg::Vote(_))),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(oracle)
            .spawn_honest(|p| {
                let mut verifier = Verifier::new(chain.pki());
                if p == PartyId::new(1) {
                    verifier = verifier.with_probe(Arc::clone(&probe));
                }
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    verifier,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(5)));
        // Byte-equal recorded votes are skipped before any verifier work, so
        // party 1 queries the verifier at most once per distinct voter —
        // whether that query recomputes (macs) or lands in the Pki-wide
        // shared cache another party already filled (hits) depends only on
        // scheduling, so bound their sum.
        assert!(
            probe.macs() + probe.hits() <= 4,
            "one verifier query per voter, got macs={} hits={}",
            probe.macs(),
            probe.hits()
        );
    }

    #[test]
    fn brb_termination_via_forwarded_bundle() {
        // Drop all votes toward party 3; it can still commit from the
        // Forward bundle of a committed party (the termination property).
        use gcl_sim::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 11);
        let oracle: ScheduleOracle<Brb2Msg> = ScheduleOracle::new(DELAY).rule(
            DelayRule::link(
                PartySet::Any,
                PartySet::One(PartyId::new(3)),
                LinkDelay::Finite(Duration::from_millis(900)),
            )
            .when(|m: &Brb2Msg| matches!(m, Brb2Msg::Vote(_))),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(oracle)
            .spawn_honest(|p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(5)));
        // Party 3 commits strictly later than the others but still commits.
        let c3 = o.commit_of(PartyId::new(3)).unwrap();
        let c1 = o.commit_of(PartyId::new(1)).unwrap();
        assert!(c3.global > c1.global);
    }

    #[test]
    fn forged_votes_rejected() {
        // Votes signed under a different key universe are ignored: nobody
        // commits off them.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 12);
        let rogue = Keychain::generate(4, 999);
        let mut bundle = Vec::new();
        for i in 0..3 {
            bundle.push(SignedVote::new(
                &rogue.signer(PartyId::new(i)),
                Value::new(3),
            ));
        }
        let script = gcl_sim::Scripted::multicast_at(
            gcl_types::LocalTime::ZERO,
            &[PartyId::new(1), PartyId::new(2), PartyId::new(3)],
            Brb2Msg::Forward(bundle),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(PartyId::new(0), script)
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        assert!(o.honest_commits().next().is_none(), "forged bundle ignored");
    }

    #[test]
    fn mixed_value_bundle_rejected() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 13);
        let bundle = vec![
            SignedVote::new(&chain.signer(PartyId::new(0)), Value::ZERO),
            SignedVote::new(&chain.signer(PartyId::new(0)), Value::ONE),
        ];
        let script = gcl_sim::Scripted::multicast_at(
            gcl_types::LocalTime::ZERO,
            &[PartyId::new(1)],
            Brb2Msg::Forward(bundle),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(DELAY))
            .byzantine(PartyId::new(0), script)
            .spawn_honest(|p| {
                TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
            })
            .run();
        assert!(o.honest_commits().next().is_none());
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn rejects_insufficient_resilience() {
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 1);
        let _ = TwoRoundBrb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }

    #[test]
    #[should_panic(expected = "broadcaster provides an input")]
    fn rejects_input_mismatch() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = TwoRoundBrb::new(
            cfg,
            chain.signer(PartyId::new(1)),
            chain.pki(),
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }

    #[test]
    fn vote_roundtrip() {
        let chain = Keychain::generate(2, 4);
        let v = SignedVote::new(&chain.signer(PartyId::new(1)), Value::new(6));
        assert!(v.verify(&chain.pki()));
        assert_eq!(v.voter(), PartyId::new(1));
        let mut w = v;
        w.value = Value::new(7);
        assert!(!w.verify(&chain.pki()), "tampered value fails");
    }
}
