//! Asynchronous Byzantine reliable broadcast (paper Section 3).
//!
//! The tight good-case latency for asynchronous BRB is **2 rounds** with
//! `n ≥ 3f + 1` (Theorems 4–5):
//!
//! * [`TwoRoundBrb`] — the paper's Figure 1 protocol, committing in 2
//!   asynchronous rounds when the broadcaster is honest.
//! * [`BrachaBrb`] — Bracha's classical unauthenticated reliable broadcast,
//!   the 3-round baseline the paper compares against (its good case is one
//!   round slower; the paper's conclusion notes the open 2-vs-3 gap in the
//!   *unauthenticated* setting which Bracha upper-bounds).

mod bracha;
mod brb2;

pub use bracha::{BrachaBrb, BrachaMsg};
pub use brb2::{Brb2Msg, EquivocatingBroadcaster, SignedVote, TwoRoundBrb};

use gcl_crypto::Keychain;
use gcl_sim::{Admission, ScenarioRegistry, ScenarioSpec, ValidityMode};

/// Registers this module's scenario families (`brb2`, `bracha`).
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "brb2",
        "2-round BRB (Fig 1) — tight asynchronous good case",
        Admission::Brb,
        ValidityMode::Broadcast,
        ScenarioSpec::asynchronous("brb2", 4, 1).with_seed(200),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                TwoRoundBrb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "bracha",
        "Bracha'87 BRB — 3-round unauthenticated baseline",
        Admission::Brb,
        ValidityMode::Broadcast,
        ScenarioSpec::asynchronous("bracha", 4, 1),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            spec.run_protocol_on(backend, |p| {
                BrachaBrb::new(cfg, p, spec.broadcaster, spec.input_for(p))
            })
        },
    );
}
