//! Asynchronous Byzantine reliable broadcast (paper Section 3).
//!
//! The tight good-case latency for asynchronous BRB is **2 rounds** with
//! `n ≥ 3f + 1` (Theorems 4–5):
//!
//! * [`TwoRoundBrb`] — the paper's Figure 1 protocol, committing in 2
//!   asynchronous rounds when the broadcaster is honest.
//! * [`BrachaBrb`] — Bracha's classical unauthenticated reliable broadcast,
//!   the 3-round baseline the paper compares against (its good case is one
//!   round slower; the paper's conclusion notes the open 2-vs-3 gap in the
//!   *unauthenticated* setting which Bracha upper-bounds).

mod bracha;
mod brb2;

pub use bracha::{BrachaBrb, BrachaMsg};
pub use brb2::{Brb2Msg, EquivocatingBroadcaster, SignedVote, TwoRoundBrb};
