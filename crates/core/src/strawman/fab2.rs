//! The FaB-style 2-round psync strawman broken by Theorem 7 at
//! `n ≤ 5f − 2`.
//!
//! Identical fast path to the `(5f−1)`-psync-VBB (propose, vote, commit on
//! `n − f` votes) but with FaB's *plain-majority* view change: the next
//! leader re-proposes the majority value among the `n − f` view-change
//! messages. The paper shows this tie-break is exactly what fails below
//! `n = 5f − 1`: with `n = 5f − 2`, the adversary can commit `v` at one
//! honest party and then steer the view-change majority to `v'`.
//!
//! Only two views are modeled — enough to realize the Figure 4 violation.

use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, PartyId, Value, View};
use std::collections::{BTreeMap, BTreeSet};

/// Leader-signed proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabProposal {
    /// Proposed value.
    pub value: Value,
    /// View.
    pub view: View,
    /// Leader signature.
    pub sig: Signature,
    /// View ≥ 2: the view-change quorum justifying the value.
    pub proof: Vec<FabViewChange>,
}

impl FabProposal {
    fn digest(value: Value, view: View) -> Digest {
        Digest::of(&("fab-prop", value, view))
    }

    /// Signs a proposal.
    pub fn new(signer: &Signer, value: Value, view: View, proof: Vec<FabViewChange>) -> Self {
        FabProposal {
            value,
            view,
            sig: signer.sign(Self::digest(value, view)),
            proof,
        }
    }
}

/// Signed vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabVote {
    /// Voted value.
    pub value: Value,
    /// View.
    pub view: View,
    /// Voter signature.
    pub sig: Signature,
}

impl FabVote {
    fn digest(value: Value, view: View) -> Digest {
        Digest::of(&("fab-vote", value, view))
    }

    /// Signs a vote.
    pub fn new(signer: &Signer, value: Value, view: View) -> Self {
        FabVote {
            value,
            view,
            sig: signer.sign(Self::digest(value, view)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value, self.view), &self.sig)
    }
}

/// View-change message: what (if anything) the sender voted in view 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabViewChange {
    /// The abandoned view.
    pub view: View,
    /// The value the sender voted, if any.
    pub voted: Option<Value>,
    /// Sender signature.
    pub sig: Signature,
}

impl FabViewChange {
    fn digest(view: View, voted: Option<Value>) -> Digest {
        Digest::of(&("fab-vc", view, voted))
    }

    /// Signs a view change.
    pub fn new(signer: &Signer, view: View, voted: Option<Value>) -> Self {
        FabViewChange {
            view,
            voted,
            sig: signer.sign(Self::digest(view, voted)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.view, self.voted), &self.sig)
    }

    /// The sender.
    pub fn sender(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Convenience for adversarial scripts: a proposal with an empty proof.
pub fn fab_proposal(signer: &Signer, value: Value, view: View) -> FabProposal {
    FabProposal::new(signer, value, view, Vec::new())
}

/// Convenience for adversarial scripts: a signed vote.
pub fn fab_vote(signer: &Signer, value: Value, view: View) -> FabVote {
    FabVote::new(signer, value, view)
}

/// Wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabMsg {
    /// Leader proposal (view 1 or 2).
    Propose(FabProposal),
    /// Vote.
    Vote(FabVote),
    /// View change (sent on timeout of view 1).
    ViewChange(FabViewChange),
}

gcl_types::wire_struct!(FabProposal {
    value,
    view,
    sig,
    proof
});
gcl_types::wire_struct!(FabVote { value, view, sig });
gcl_types::wire_struct!(FabViewChange { view, voted, sig });

/// Wire codec: one tag byte per message kind.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for FabMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                FabMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                FabMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                FabMsg::ViewChange(vc) => {
                    buf.push(3);
                    vc.encode(buf);
                }
            }
        }
    }

    impl Decode for FabMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(FabMsg::Propose(Decode::decode(input)?)),
                2 => Ok(FabMsg::Vote(Decode::decode(input)?)),
                3 => Ok(FabMsg::ViewChange(Decode::decode(input)?)),
                tag => Err(WireError::BadTag { ty: "FabMsg", tag }),
            }
        }
    }
}

const TAG_TIMEOUT: u64 = 1;

/// One party of the FaB-style strawman.
#[derive(Debug)]
pub struct FabTwoRound {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    input: Option<Value>,
    view: View,
    voted_v1: Option<Value>,
    voted_v2: bool,
    committed: bool,
    proposed_v2: bool,
    votes: BTreeMap<(View, Value), BTreeSet<PartyId>>,
    vcs: BTreeMap<PartyId, FabViewChange>,
}

impl FabTwoRound {
    /// Creates the party-side state; `input` only at the view-1 leader
    /// (party 0). View 2's leader is party 1.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        input: Option<Value>,
    ) -> Self {
        assert_eq!(input.is_some(), signer.id() == PartyId::new(0));
        FabTwoRound {
            config,
            signer,
            verifier: verifier.into(),
            big_delta,
            input,
            view: View::FIRST,
            voted_v1: None,
            voted_v2: false,
            committed: false,
            proposed_v2: false,
            votes: BTreeMap::new(),
            vcs: BTreeMap::new(),
        }
    }

    fn q(&self) -> usize {
        self.config.quorum()
    }

    /// FaB's rule: the majority `voted` value among the quorum (ties and
    /// all-`None` fall back to the leader's discretion — here `None`).
    pub fn majority_of(vcs: &[FabViewChange]) -> Option<Value> {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for vc in vcs {
            if let Some(v) = vc.voted {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then(vb.cmp(va)))
            .map(|(v, _)| v)
    }

    fn record_vote(&mut self, vote: FabVote, ctx: &mut dyn Context<FabMsg>) {
        if !vote.verify(&self.verifier) {
            return;
        }
        let q = self.q();
        let set = self.votes.entry((vote.view, vote.value)).or_default();
        set.insert(vote.sig.signer());
        if set.len() >= q && !self.committed {
            self.committed = true;
            ctx.commit(vote.value);
            ctx.terminate();
        }
    }

    fn try_propose_v2(&mut self, ctx: &mut dyn Context<FabMsg>) {
        if self.proposed_v2 || self.signer.id() != PartyId::new(1) || self.vcs.len() < self.q() {
            return;
        }
        self.proposed_v2 = true;
        let proof: Vec<FabViewChange> = self.vcs.values().copied().collect();
        let value = Self::majority_of(&proof).unwrap_or(Value::new(4_000_000));
        let prop = FabProposal::new(&self.signer, value, View::new(2), proof);
        ctx.multicast(FabMsg::Propose(prop));
    }
}

impl Protocol for FabTwoRound {
    type Msg = FabMsg;

    fn start(&mut self, ctx: &mut dyn Context<FabMsg>) {
        ctx.set_timer(self.big_delta * 4, TAG_TIMEOUT);
        if let Some(v) = self.input {
            let prop = FabProposal::new(&self.signer, v, View::FIRST, Vec::new());
            ctx.multicast(FabMsg::Propose(prop));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: FabMsg, ctx: &mut dyn Context<FabMsg>) {
        if self.committed {
            return;
        }
        match msg {
            FabMsg::Propose(prop) => match prop.view {
                View::FIRST => {
                    if from == PartyId::new(0)
                        && self.voted_v1.is_none()
                        && self.view == View::FIRST
                    {
                        self.voted_v1 = Some(prop.value);
                        ctx.multicast(FabMsg::Vote(FabVote::new(
                            &self.signer,
                            prop.value,
                            View::FIRST,
                        )));
                    }
                }
                _ => {
                    // View 2: accept if the proof is a quorum of valid VCs
                    // and the value matches its plain majority.
                    if from != PartyId::new(1) || self.voted_v2 {
                        return;
                    }
                    let senders: BTreeSet<PartyId> =
                        prop.proof.iter().map(FabViewChange::sender).collect();
                    if senders.len() < self.q()
                        || !prop.proof.iter().all(|vc| vc.verify(&self.verifier))
                    {
                        return;
                    }
                    if Self::majority_of(&prop.proof).is_some_and(|m| m != prop.value) {
                        return;
                    }
                    self.voted_v2 = true;
                    ctx.multicast(FabMsg::Vote(FabVote::new(
                        &self.signer,
                        prop.value,
                        View::new(2),
                    )));
                }
            },
            FabMsg::Vote(vote) => self.record_vote(vote, ctx),
            FabMsg::ViewChange(vc) => {
                if vc.verify(&self.verifier) && vc.view == View::FIRST {
                    self.vcs.insert(vc.sender(), vc);
                    self.try_propose_v2(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<FabMsg>) {
        if tag == TAG_TIMEOUT && !self.committed && self.view == View::FIRST {
            self.view = View::new(2);
            let vc = FabViewChange::new(&self.signer, View::FIRST, self.voted_v1);
            self.vcs.insert(self.signer.id(), vc);
            ctx.multicast(FabMsg::ViewChange(vc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Simulation, TimingModel};

    #[test]
    fn good_case_two_rounds_like_fab() {
        // With an honest leader the strawman genuinely does 2 rounds — the
        // overclaim is only visible under the Theorem 7 schedule (see
        // `lower_bounds::theorem7`).
        let cfg = Config::new(8, 2).unwrap(); // n = 5f − 2
        let chain = Keychain::generate(8, 110);
        let d = Duration::from_micros(100);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(d))
            .spawn_honest(|p| {
                FabTwoRound::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    d,
                    (p == PartyId::new(0)).then_some(Value::new(9)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(9)));
        assert_eq!(o.good_case_rounds(), Some(2));
    }

    #[test]
    fn majority_rule() {
        let chain = Keychain::generate(4, 111);
        let mk = |i: u32, v: Option<Value>| {
            FabViewChange::new(&chain.signer(PartyId::new(i)), View::FIRST, v)
        };
        let vcs = vec![
            mk(0, Some(Value::ONE)),
            mk(1, Some(Value::ONE)),
            mk(2, Some(Value::ZERO)),
            mk(3, None),
        ];
        assert_eq!(FabTwoRound::majority_of(&vcs), Some(Value::ONE));
        assert_eq!(FabTwoRound::majority_of(&[mk(0, None)]), None);
    }
}
