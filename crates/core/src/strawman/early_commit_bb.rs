//! The early-commit synchronous BB strawman broken by Theorem 9.
//!
//! At `f = n/3` it commits on `n − f` votes the moment they arrive —
//! skipping Figure 5's Δ equivocation-detection window. Its good case is
//! a tempting `2δ < Δ + δ`; the Theorem 9 execution (equivocating
//! broadcaster + double-voting accomplices) makes two honest parties
//! commit different values before any cross-traffic can warn them.

use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Signed vote (same shape as Figure 5's, no embedded proposal needed for
/// the strawman).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyVote {
    /// Voted value.
    pub value: Value,
    /// Voter signature.
    pub sig: Signature,
}

impl EarlyVote {
    fn digest(value: Value) -> Digest {
        Digest::of(&("early-vote", value))
    }

    /// Signs a vote.
    pub fn new(signer: &Signer, value: Value) -> Self {
        EarlyVote {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value), &self.sig)
    }
}

/// Wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyMsg {
    /// Proposal (unsigned — the strawman's voters trust the sender id).
    Propose(Value),
    /// Signed vote.
    Vote(EarlyVote),
}

gcl_types::wire_struct!(EarlyVote { value, sig });

/// Wire codec: one tag byte per message kind.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for EarlyMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                EarlyMsg::Propose(v) => {
                    buf.push(1);
                    v.encode(buf);
                }
                EarlyMsg::Vote(vote) => {
                    buf.push(2);
                    vote.encode(buf);
                }
            }
        }
    }

    impl Decode for EarlyMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(EarlyMsg::Propose(Decode::decode(input)?)),
                2 => Ok(EarlyMsg::Vote(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "EarlyMsg",
                    tag,
                }),
            }
        }
    }
}

/// One party of the early-commit strawman.
#[derive(Debug)]
pub struct EarlyCommitBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    broadcaster: PartyId,
    input: Option<Value>,
    voted: bool,
    committed: bool,
    votes: BTreeMap<Value, BTreeSet<PartyId>>,
}

impl EarlyCommitBb {
    /// Creates the party-side state.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        EarlyCommitBb {
            config,
            signer,
            verifier: verifier.into(),
            broadcaster,
            input,
            voted: false,
            committed: false,
            votes: BTreeMap::new(),
        }
    }
}

impl Protocol for EarlyCommitBb {
    type Msg = EarlyMsg;

    fn start(&mut self, ctx: &mut dyn Context<EarlyMsg>) {
        if let Some(v) = self.input {
            ctx.multicast(EarlyMsg::Propose(v));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: EarlyMsg, ctx: &mut dyn Context<EarlyMsg>) {
        match msg {
            EarlyMsg::Propose(v) => {
                if from == self.broadcaster && !self.voted {
                    self.voted = true;
                    ctx.multicast(EarlyMsg::Vote(EarlyVote::new(&self.signer, v)));
                }
            }
            EarlyMsg::Vote(vote) => {
                if !vote.verify(&self.verifier) {
                    return;
                }
                let set = self.votes.entry(vote.value).or_default();
                set.insert(vote.sig.signer());
                if set.len() >= self.config.quorum() && !self.committed {
                    self.committed = true;
                    ctx.commit(vote.value); // no Δ wait: the flaw
                    ctx.terminate();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Simulation, TimingModel};
    use gcl_types::Duration;

    #[test]
    fn good_case_two_delta_thats_the_overclaim() {
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 112);
        let d = Duration::from_micros(100);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: d,
                big_delta: Duration::from_micros(1_000),
            })
            .oracle(FixedDelay::new(d))
            .spawn_honest(|p| {
                EarlyCommitBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(2)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(2)));
        // 2δ < Δ + δ — below the Theorem 9 bound for f = n/3.
        assert_eq!(o.good_case_latency(), Some(d * 2));
    }
}
