//! Deliberately latency-overclaiming protocols.
//!
//! Every lower bound in the paper says "no protocol can commit faster than
//! X". The way to *run* such a theorem is to build the protocol that tries
//! — commit one round/δ earlier than the bound allows — and let the paper's
//! adversarial execution break it. These strawmen are that: correct-looking
//! protocols whose only flaw is claiming a latency below the tight bound.
//!
//! * [`OneRoundBrb`] — commits on the proposal alone (Theorem 4/6: 1 round
//!   is impossible; the equivocating broadcaster splits it).
//! * [`FabTwoRound`] — FaB-style 2-round commit with the *plain-majority*
//!   view change, run at `n = 5f − 2` (Theorem 7: below `5f − 1`, 2 rounds
//!   are impossible; the Figure 4 style schedule splits it across a view
//!   change).
//! * [`EarlyCommitBb`] — synchronous BB that skips the Δ equivocation
//!   window at `f = n/3` (Theorem 9: commits before `Δ + δ` are unsafe).
//!
//! The matching executions live in [`crate::lower_bounds`].

mod early_commit_bb;
mod fab2;
mod one_round_brb;

pub use early_commit_bb::{EarlyCommitBb, EarlyMsg, EarlyVote};
pub use fab2::{fab_proposal, fab_vote, FabMsg, FabProposal, FabTwoRound, FabViewChange, FabVote};
pub use one_round_brb::{OneRoundBrb, OneRoundMsg};

use gcl_crypto::Keychain;
use gcl_sim::{Admission, ScenarioRegistry, ScenarioSpec, ValidityMode};

/// Registers this module's scenario families (`one_round_brb`, `fab2`,
/// `early_commit_bb`).
///
/// The strawmen overclaim *latency*, not crash tolerance: under the
/// crash/silent adversary mixes a [`ScenarioSpec`] can express they stay
/// safe — only the scripted lower-bound executions (equivocation,
/// double votes) in [`crate::lower_bounds`] split them.
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "one_round_brb",
        "1-round BRB strawman — below the Theorem 4 bound",
        Admission::Brb,
        ValidityMode::Broadcast,
        ScenarioSpec::asynchronous("one_round_brb", 4, 1),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            spec.run_protocol_on(backend, |p| {
                OneRoundBrb::new(cfg, p, spec.broadcaster, spec.input_for(p))
            })
        },
    );
    reg.register_fn(
        "fab2",
        "FaB-style 2-round commit with plain-majority view change",
        Admission::Brb,
        ValidityMode::Broadcast,
        ScenarioSpec::psync("fab2", 8, 2).with_seed(212),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                FabTwoRound::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "early_commit_bb",
        "early-commit BB strawman — skips the Delta equivocation window",
        Admission::ExactThird,
        ValidityMode::Broadcast,
        ScenarioSpec::synchronous("early_commit_bb", 3, 1).with_seed(213),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                EarlyCommitBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
}
