//! Deliberately latency-overclaiming protocols.
//!
//! Every lower bound in the paper says "no protocol can commit faster than
//! X". The way to *run* such a theorem is to build the protocol that tries
//! — commit one round/δ earlier than the bound allows — and let the paper's
//! adversarial execution break it. These strawmen are that: correct-looking
//! protocols whose only flaw is claiming a latency below the tight bound.
//!
//! * [`OneRoundBrb`] — commits on the proposal alone (Theorem 4/6: 1 round
//!   is impossible; the equivocating broadcaster splits it).
//! * [`FabTwoRound`] — FaB-style 2-round commit with the *plain-majority*
//!   view change, run at `n = 5f − 2` (Theorem 7: below `5f − 1`, 2 rounds
//!   are impossible; the Figure 4 style schedule splits it across a view
//!   change).
//! * [`EarlyCommitBb`] — synchronous BB that skips the Δ equivocation
//!   window at `f = n/3` (Theorem 9: commits before `Δ + δ` are unsafe).
//!
//! The matching executions live in [`crate::lower_bounds`].

mod early_commit_bb;
mod fab2;
mod one_round_brb;

pub use early_commit_bb::{EarlyCommitBb, EarlyMsg, EarlyVote};
pub use fab2::{fab_proposal, fab_vote, FabMsg, FabProposal, FabTwoRound, FabViewChange, FabVote};
pub use one_round_brb::{OneRoundBrb, OneRoundMsg};
