//! The 1-round BRB strawman broken by Theorem 4.
//!
//! Commit on the broadcaster's proposal, before hearing from anyone else.
//! Validity and 1-round latency hold when the broadcaster is honest — and
//! agreement dies the moment it equivocates, exactly as the theorem's
//! three-execution argument predicts.

use gcl_sim::{Context, Protocol};
use gcl_types::{Config, PartyId, Value};

/// Wire message: just the proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneRoundMsg(pub Value);

gcl_types::wire_newtype!(OneRoundMsg);

/// One party of the (unsafe) 1-round BRB.
#[derive(Debug)]
pub struct OneRoundBrb {
    broadcaster: PartyId,
    input: Option<Value>,
    committed: bool,
}

impl OneRoundBrb {
    /// Creates the party; `input` is `Some` only at the broadcaster.
    pub fn new(_config: Config, me: PartyId, broadcaster: PartyId, input: Option<Value>) -> Self {
        assert_eq!(input.is_some(), me == broadcaster);
        OneRoundBrb {
            broadcaster,
            input,
            committed: false,
        }
    }
}

impl Protocol for OneRoundBrb {
    type Msg = OneRoundMsg;

    fn start(&mut self, ctx: &mut dyn Context<OneRoundMsg>) {
        if let Some(v) = self.input {
            ctx.multicast(OneRoundMsg(v));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: OneRoundMsg, ctx: &mut dyn Context<OneRoundMsg>) {
        if from == self.broadcaster && !self.committed {
            self.committed = true;
            ctx.commit(msg.0);
            ctx.terminate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{FixedDelay, Simulation, TimingModel};
    use gcl_types::Duration;

    #[test]
    fn honest_broadcaster_one_round() {
        let cfg = Config::new(4, 1).unwrap();
        let o = Simulation::build(cfg)
            .timing(TimingModel::Asynchrony)
            .oracle(FixedDelay::new(Duration::from_micros(10)))
            .spawn_honest(|p| {
                OneRoundBrb::new(
                    cfg,
                    p,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(4)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(4)));
        assert_eq!(o.good_case_rounds(), Some(1), "that is the overclaim");
    }
}
