//! Dishonest-majority Byzantine broadcast (`n/2 ≤ f < n`), after Wan et
//! al. [34] with the paper's fast path (Section C.5).
//!
//! Structure per epoch `e` (leader `L_e`, `L_1` = broadcaster):
//!
//! 1. **Propose** (1 round, the fast path): `L_e` multicasts a signed
//!    proposal directly instead of TrustCasting it.
//! 2. **Vote** (one TrustCast, deadline `(⌊n/(n−f)⌋ + 1)Δ`): every party
//!    floods a signed vote for the first valid proposal — or for its lock,
//!    if it holds one.
//! 3. **Commit**: at the vote deadline, a party that has votes for one
//!    value `v` from **every party it still trusts** (and no leader
//!    equivocation proof) commits `v`, floods the vote set as a commit
//!    certificate, and keeps voting `v` in later epochs until everyone is
//!    done. Parties that missed the deadline get distrusted; transferable
//!    misbehavior (leader equivocation, double votes) distrusts too.
//! 4. A commit certificate covering the *receiver's* trust set makes the
//!    receiver lock and commit as well.
//!
//! Good-case latency ≈ `Δ + (⌊n/(n−f)⌋ + 1)Δ = Θ(n/(n−f))·Δ`, matching the
//! paper's upper bound row (`O(n/(n−f))Δ` vs the `(⌊n/(n−f)⌋ − 1)Δ` lower
//! bound of Theorem 19).
//!
//! **Scope note** (documented in `DESIGN.md`): safety rests on the
//! unanimity-of-trusted-voters rule — honest parties never distrust each
//! other, an honest committer keeps voting its value, so no conflicting
//! value can ever assemble a fully-trusted vote set. Worst-case *liveness*
//! against adaptive vote-splitting adversaries needs the full Wan et al.
//! machinery (randomized leader election, graph-diameter maintenance) and
//! is out of scope; Table 1 only needs the good case, crash faults and
//! equivocation, which the tests below exercise.

use super::trustcast::{trustcast_deadline, TrustCast, TrustCastMsg, TrustGraph};
use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Leader-signed proposal for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajProposal {
    /// Proposed value.
    pub value: Value,
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Leader signature over `("maj-prop", value, epoch)`.
    pub sig: Signature,
}

impl MajProposal {
    fn digest(value: Value, epoch: u64) -> Digest {
        Digest::of(&("maj-prop", value, epoch))
    }

    fn new(signer: &Signer, value: Value, epoch: u64) -> Self {
        MajProposal {
            value,
            epoch,
            sig: signer.sign(Self::digest(value, epoch)),
        }
    }

    fn verify(&self, leader: PartyId, v: &impl Verify) -> bool {
        self.sig.signer() == leader
            && v.verify(leader, Self::digest(self.value, self.epoch), &self.sig)
    }
}

/// A flooded, signed vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajVote {
    /// Voted value.
    pub value: Value,
    /// Epoch.
    pub epoch: u64,
    /// Voter signature over `("maj-vote", value, epoch)`.
    pub sig: Signature,
}

impl MajVote {
    fn digest(value: Value, epoch: u64) -> Digest {
        Digest::of(&("maj-vote", value, epoch))
    }

    fn new(signer: &Signer, value: Value, epoch: u64) -> Self {
        MajVote {
            value,
            epoch,
            sig: signer.sign(Self::digest(value, epoch)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value, self.epoch), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

impl TrustCastMsg for MajVote {
    fn dedup_key(&self) -> u64 {
        let d = Digest::of(&("maj-vote-k", self.value, self.epoch, self.voter()));
        u64::from_le_bytes(d.as_bytes()[..8].try_into().expect("8 bytes"))
    }
}

/// Wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MajorityMsg {
    /// Fast-path direct proposal.
    Propose(MajProposal),
    /// Flooded proposal copy (also the equivocation-evidence carrier).
    ForwardProp(MajProposal),
    /// Flooded vote.
    Vote(MajVote),
    /// Commit certificate: the committed vote set.
    CommitCert(Vec<MajVote>),
    /// Done marker: sender has committed and may be released.
    Done(MajVote),
}

gcl_types::wire_struct!(MajProposal { value, epoch, sig });
gcl_types::wire_struct!(MajVote { value, epoch, sig });

/// Wire codec: one tag byte per message kind.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for MajorityMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                MajorityMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                MajorityMsg::ForwardProp(p) => {
                    buf.push(2);
                    p.encode(buf);
                }
                MajorityMsg::Vote(v) => {
                    buf.push(3);
                    v.encode(buf);
                }
                MajorityMsg::CommitCert(vs) => {
                    buf.push(4);
                    vs.encode(buf);
                }
                MajorityMsg::Done(v) => {
                    buf.push(5);
                    v.encode(buf);
                }
            }
        }
    }

    impl Decode for MajorityMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(MajorityMsg::Propose(Decode::decode(input)?)),
                2 => Ok(MajorityMsg::ForwardProp(Decode::decode(input)?)),
                3 => Ok(MajorityMsg::Vote(Decode::decode(input)?)),
                4 => Ok(MajorityMsg::CommitCert(Decode::decode(input)?)),
                5 => Ok(MajorityMsg::Done(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "MajorityMsg",
                    tag,
                }),
            }
        }
    }
}

const TAG_EPOCH_BASE: u64 = 1;

/// One party of the dishonest-majority BB.
///
/// # Examples
///
/// `n = 4, f = 2` (half Byzantine — here simply silent): commit arrives at
/// the vote deadline, `Δ + 3Δ`:
///
/// ```
/// use gcl_core::dishonest::BbMajority;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Silent, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(4, 2)?;
/// let chain = Keychain::generate(4, 9);
/// let delta = Duration::from_micros(100);
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::lockstep(delta))
///     .oracle(FixedDelay::new(delta))
///     .byzantine(PartyId::new(2), Silent::new())
///     .byzantine(PartyId::new(3), Silent::new())
///     .spawn_honest(|p| {
///         BbMajority::new(cfg, chain.signer(p), chain.pki(), delta, PartyId::new(0),
///                         (p == PartyId::new(0)).then_some(Value::new(3)))
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(3)));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct BbMajority {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    broadcaster: PartyId,
    input: Option<Value>,
    fallback: Value,
    epoch: u64,
    trust: TrustGraph,
    flood: TrustCast,
    /// Proposals seen per epoch (first + any equivocation evidence).
    proposals: BTreeMap<u64, BTreeMap<Value, MajProposal>>,
    votes: BTreeMap<u64, BTreeMap<PartyId, MajVote>>,
    voted: BTreeSet<u64>,
    lock: Option<(Value, u64)>,
    committed: Option<Value>,
    done_from: BTreeSet<PartyId>,
    max_epochs: u64,
}

impl BbMajority {
    /// Vote-flood deadline for this configuration.
    pub fn vote_deadline(config: Config, big_delta: Duration) -> Duration {
        trustcast_deadline(config, big_delta)
    }

    /// Epoch duration: 1 proposal round + the vote flood deadline + slack.
    pub fn epoch_duration(config: Config, big_delta: Duration) -> Duration {
        big_delta + Self::vote_deadline(config, big_delta) + big_delta
    }

    /// Creates the party-side state.
    ///
    /// # Panics
    ///
    /// Panics if the input/broadcaster roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        let fallback = Value::new(3_000_000 + u64::from(signer.id().index()));
        BbMajority {
            config,
            signer,
            verifier: verifier.into(),
            big_delta,
            broadcaster,
            input,
            fallback,
            epoch: 1,
            trust: TrustGraph::new(config),
            flood: TrustCast::new(),
            proposals: BTreeMap::new(),
            votes: BTreeMap::new(),
            voted: BTreeSet::new(),
            lock: None,
            committed: None,
            done_from: BTreeSet::new(),
            max_epochs: 3 * config.n() as u64,
        }
    }

    fn me(&self) -> PartyId {
        self.signer.id()
    }

    fn leader(&self, epoch: u64) -> PartyId {
        if epoch == 1 {
            self.broadcaster
        } else {
            PartyId::new(((epoch - 1) % self.config.n() as u64) as u32)
        }
    }

    fn note_proposal(&mut self, prop: MajProposal) {
        let bucket = self.proposals.entry(prop.epoch).or_default();
        bucket.entry(prop.value).or_insert(prop);
        if bucket.len() >= 2 {
            // Transferable equivocation proof: distrust the epoch leader.
            let leader = self.leader(prop.epoch);
            self.trust.distrust(leader);
        }
    }

    fn cast_vote(&mut self, epoch: u64, value: Value, ctx: &mut dyn Context<MajorityMsg>) {
        if !self.voted.insert(epoch) {
            return;
        }
        let vote = MajVote::new(&self.signer, value, epoch);
        let me = self.me();
        self.flood.first_sighting(&vote);
        self.votes.entry(epoch).or_default().insert(me, vote);
        ctx.multicast_except(MajorityMsg::Vote(vote), self.me());
    }

    fn record_vote(&mut self, vote: MajVote, ctx: &mut dyn Context<MajorityMsg>) {
        if !vote.verify(&self.verifier) {
            return;
        }
        // Flood exactly once.
        if self.flood.first_sighting(&vote) {
            ctx.multicast_except(MajorityMsg::Vote(vote), self.me());
        }
        let bucket = self.votes.entry(vote.epoch).or_default();
        match bucket.get(&vote.voter()) {
            None => {
                bucket.insert(vote.voter(), vote);
            }
            Some(prev) if prev.value != vote.value => {
                // Transferable double-vote proof.
                self.trust.distrust(vote.voter());
            }
            Some(_) => {}
        }
    }

    /// Commit rule: one value voted by every still-trusted party, and no
    /// equivocation proof against the epoch leader.
    fn try_commit(&mut self, epoch: u64, ctx: &mut dyn Context<MajorityMsg>) {
        if self.committed.is_some() {
            return;
        }
        let Some(bucket) = self.votes.get(&epoch) else {
            return;
        };
        let mut by_value: BTreeMap<Value, BTreeSet<PartyId>> = BTreeMap::new();
        for (p, v) in bucket {
            if self.trust.trusts(*p) {
                by_value.entry(v.value).or_default().insert(*p);
            }
        }
        let leader_equivocated = self
            .proposals
            .get(&epoch)
            .is_some_and(|props| props.len() >= 2);
        if leader_equivocated {
            return;
        }
        for (value, voters) in by_value {
            if self.trust.covered_by(&voters) {
                self.committed = Some(value);
                self.lock = Some((value, epoch));
                let cert: Vec<MajVote> = bucket
                    .values()
                    .filter(|v| v.value == value)
                    .copied()
                    .collect();
                ctx.multicast_except(MajorityMsg::CommitCert(cert), self.me());
                ctx.commit(value);
                // Stay alive: keep voting `value` so no conflicting
                // unanimity can ever form; release peers with Done.
                let done = MajVote::new(&self.signer, value, u64::MAX);
                ctx.multicast_except(MajorityMsg::Done(done), self.me());
                self.maybe_halt(ctx);
                return;
            }
        }
    }

    fn on_commit_cert(&mut self, cert: Vec<MajVote>, ctx: &mut dyn Context<MajorityMsg>) {
        if self.committed.is_some() || cert.is_empty() {
            return;
        }
        let value = cert[0].value;
        let epoch = cert[0].epoch;
        if !cert
            .iter()
            .all(|v| v.value == value && v.epoch == epoch && v.verify(&self.verifier))
        {
            return;
        }
        let voters: BTreeSet<PartyId> = cert.iter().map(MajVote::voter).collect();
        // Accept only if it covers *our* trust set: then the same unanimity
        // argument applies locally.
        if self.trust.covered_by(&voters) {
            self.committed = Some(value);
            self.lock = Some((value, epoch));
            ctx.multicast_except(MajorityMsg::CommitCert(cert), self.me());
            ctx.commit(value);
            let done = MajVote::new(&self.signer, value, u64::MAX);
            ctx.multicast_except(MajorityMsg::Done(done), self.me());
            self.maybe_halt(ctx);
        }
    }

    /// Terminate once every trusted party reported Done.
    fn maybe_halt(&mut self, ctx: &mut dyn Context<MajorityMsg>) {
        if self.committed.is_none() {
            return;
        }
        let mut done = self.done_from.clone();
        done.insert(self.me());
        if self.trust.covered_by(&done) {
            ctx.terminate();
        }
    }

    fn begin_epoch(&mut self, epoch: u64, ctx: &mut dyn Context<MajorityMsg>) {
        self.epoch = epoch;
        if epoch > self.max_epochs {
            // Bounded-run safeguard for simulations (documented scope).
            if let Some(v) = self.committed {
                ctx.commit(v);
            }
            ctx.terminate();
            return;
        }
        let dur = Self::epoch_duration(self.config, self.big_delta);
        // Vote deadline for this epoch, then next epoch.
        ctx.set_timer(
            dur * (epoch - 1) + self.big_delta + Self::vote_deadline(self.config, self.big_delta)
                - ctx.now().since(gcl_types::LocalTime::ZERO),
            TAG_EPOCH_BASE + epoch * 2,
        );
        ctx.set_timer(
            dur * epoch - ctx.now().since(gcl_types::LocalTime::ZERO),
            TAG_EPOCH_BASE + epoch * 2 + 1,
        );
        if self.leader(epoch) == self.me() {
            let value = self
                .committed
                .or(self.lock.map(|(v, _)| v))
                .or(self.input)
                .unwrap_or(self.fallback);
            let prop = MajProposal::new(&self.signer, value, epoch);
            self.note_proposal(prop);
            ctx.multicast(MajorityMsg::Propose(prop));
        }
        // Committed parties re-assert their value each epoch.
        if let Some(v) = self.committed {
            self.cast_vote(epoch, v, ctx);
        }
    }

    fn handle_proposal(&mut self, prop: MajProposal, ctx: &mut dyn Context<MajorityMsg>) {
        if !prop.verify(self.leader(prop.epoch), &self.verifier) {
            return;
        }
        let first_of_value = self
            .proposals
            .get(&prop.epoch)
            .is_none_or(|b| !b.contains_key(&prop.value));
        self.note_proposal(prop);
        if first_of_value {
            // Flood (carries equivocation evidence to everyone).
            ctx.multicast_except(MajorityMsg::ForwardProp(prop), self.me());
        }
        if prop.epoch == self.epoch && !self.voted.contains(&prop.epoch) {
            // Vote the lock if held, else the leader's value.
            let value = match (self.committed, self.lock) {
                (Some(v), _) => v,
                (None, Some((v, _))) => v,
                (None, None) => prop.value,
            };
            self.cast_vote(prop.epoch, value, ctx);
        }
    }
}

impl Protocol for BbMajority {
    type Msg = MajorityMsg;

    fn start(&mut self, ctx: &mut dyn Context<MajorityMsg>) {
        self.begin_epoch(1, ctx);
    }

    fn on_message(&mut self, _from: PartyId, msg: MajorityMsg, ctx: &mut dyn Context<MajorityMsg>) {
        match msg {
            MajorityMsg::Propose(p) | MajorityMsg::ForwardProp(p) => {
                self.handle_proposal(p, ctx);
            }
            MajorityMsg::Vote(v) => {
                let epoch = v.epoch;
                self.record_vote(v, ctx);
                // Unanimity may already be reachable before the deadline
                // when every party (trusted so far) has voted.
                self.try_commit(epoch, ctx);
            }
            MajorityMsg::CommitCert(cert) => self.on_commit_cert(cert, ctx),
            MajorityMsg::Done(d) => {
                if d.epoch == u64::MAX && d.verify(&self.verifier) {
                    self.done_from.insert(d.voter());
                    self.maybe_halt(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<MajorityMsg>) {
        let idx = tag - TAG_EPOCH_BASE;
        let epoch = idx / 2;
        if idx.is_multiple_of(2) {
            // Vote deadline: distrust non-voters, then try to commit.
            if epoch == self.epoch && self.committed.is_none() {
                let voters: BTreeSet<PartyId> = self
                    .votes
                    .get(&epoch)
                    .map(|b| b.keys().copied().collect())
                    .unwrap_or_default();
                let missing: Vec<PartyId> =
                    self.trust.iter().filter(|p| !voters.contains(p)).collect();
                for p in missing {
                    self.trust.distrust(p);
                }
                self.try_commit(epoch, ctx);
            }
        } else if epoch == self.epoch && self.committed.is_none() {
            self.begin_epoch(epoch + 1, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Silent, Simulation, TimingModel};
    use gcl_types::LocalTime;

    const DELTA: Duration = Duration::from_micros(100);

    fn good_case(n: usize, f: usize, silent: &[u32]) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 100);
        let mut b = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA));
        for &s in silent {
            b = b.byzantine(PartyId::new(s), Silent::new());
        }
        b.spawn_honest(|p| {
            BbMajority::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(6)),
            )
        })
        .run()
    }

    #[test]
    fn all_honest_commit_fast() {
        // With zero actual faults unanimity completes as soon as all votes
        // arrive (2δ), well before the deadline.
        let o = good_case(4, 2, &[]);
        assert!(o.validity_holds(Value::new(6)));
        assert!(o.good_case_latency().unwrap() <= DELTA * 2);
    }

    #[test]
    fn good_case_with_silent_byzantines_hits_deadline() {
        // f = 2 silent of n = 4: the deadline (Δ + 3Δ) gates the commit —
        // the Θ(n/(n−f))Δ shape of Table 1.
        let o = good_case(4, 2, &[2, 3]);
        assert!(o.validity_holds(Value::new(6)));
        let expect = DELTA + BbMajority::vote_deadline(Config::new(4, 2).unwrap(), DELTA);
        assert_eq!(o.good_case_latency(), Some(expect));
    }

    #[test]
    fn latency_scales_with_resilience_ratio() {
        // (n, f) with increasing n/(n−f): 2, 3, 5.
        let mut last = Duration::ZERO;
        for (n, f) in [(4, 2), (6, 4), (10, 8)] {
            let silent: Vec<u32> = ((n - f) as u32..n as u32).collect();
            let o = good_case(n, f, &silent);
            assert!(o.validity_holds(Value::new(6)), "n={n} f={f}");
            let lat = o.good_case_latency().unwrap();
            assert!(lat > last, "latency grows with n/(n−f)");
            last = lat;
        }
    }

    #[test]
    fn crash_mid_protocol_still_commits() {
        let cfg = Config::new(4, 2).unwrap();
        let chain = Keychain::generate(4, 101);
        let honest3 = BbMajority::new(
            cfg,
            chain.signer(PartyId::new(3)),
            chain.pki(),
            DELTA,
            PartyId::new(0),
            None,
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(2), Silent::new())
            .byzantine(PartyId::new(3), gcl_sim::Crashing::new(honest3, 2))
            .spawn_honest(|p| {
                BbMajority::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(6)),
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(6)));
    }

    #[test]
    fn equivocating_leader_blocks_epoch_one_commit() {
        // Leader signs 0 and 1 (epoch 1). The flooded proposals are a
        // transferable equivocation proof: nobody commits in epoch 1; a
        // later honest leader drives agreement.
        let cfg = Config::new(4, 2).unwrap();
        let chain = Keychain::generate(4, 102);
        let s0 = chain.signer(PartyId::new(0));
        let p0 = MajProposal::new(&s0, Value::ZERO, 1);
        let p1 = MajProposal::new(&s0, Value::ONE, 1);
        let actions = vec![
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(1),
                msg: MajorityMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(2),
                msg: MajorityMsg::Propose(p1),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(3),
                msg: MajorityMsg::Propose(p1),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                BbMajority::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "later epochs recover");
        // Committed in an epoch ≥ 2.
        let dur = BbMajority::epoch_duration(cfg, DELTA);
        for c in o.honest_commits() {
            assert!(c.local.as_micros() >= dur.as_micros());
        }
    }

    #[test]
    fn double_voter_distrusted_and_harmless() {
        // P3 votes both 0-proposal value and a fake; its double vote is
        // transferable evidence, so it is dropped from trust sets and the
        // rest commit.
        let cfg = Config::new(4, 2).unwrap();
        let chain = Keychain::generate(4, 103);
        let s3 = chain.signer(PartyId::new(3));
        let dv = vec![
            ScriptedAction {
                at: LocalTime::from_micros(150),
                to: PartyId::new(1),
                msg: MajorityMsg::Vote(MajVote::new(&s3, Value::new(6), 1)),
            },
            ScriptedAction {
                at: LocalTime::from_micros(150),
                to: PartyId::new(1),
                msg: MajorityMsg::Vote(MajVote::new(&s3, Value::new(99), 1)),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(3), Scripted::new(dv))
            .byzantine(PartyId::new(2), Silent::new())
            .spawn_honest(|p| {
                BbMajority::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(6)),
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(6)));
    }

    #[test]
    fn dishonest_majority_tolerated() {
        // f = 3 of n = 4: a single honest party + the honest broadcaster
        // path. The honest party commits the broadcaster's value alone.
        let o = good_case(4, 3, &[1, 2, 3]);
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(6)));
    }
}
