//! Dishonest-majority Byzantine broadcast (paper Section 5.5).
//!
//! For `n/2 ≤ f < n` the paper proves a `(⌊n/(n−f)⌋ − 1)Δ` lower bound
//! (Theorem 19) and cites Wan et al. [34] for an `O(n/(n−f))Δ` upper bound
//! (with the Section C.5 fast path giving ≈ `2n/(n−f)·Δ`). [`BbMajority`]
//! implements that fast-path protocol on top of [`TrustGraph`] /
//! [`TrustCast`].

mod bb_majority;
mod trustcast;

pub use bb_majority::{BbMajority, MajProposal, MajVote, MajorityMsg};
pub use trustcast::{trustcast_deadline, TrustCast, TrustCastMsg, TrustGraph};
