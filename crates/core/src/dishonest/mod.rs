//! Dishonest-majority Byzantine broadcast (paper Section 5.5).
//!
//! For `n/2 ≤ f < n` the paper proves a `(⌊n/(n−f)⌋ − 1)Δ` lower bound
//! (Theorem 19) and cites Wan et al. [34] for an `O(n/(n−f))Δ` upper bound
//! (with the Section C.5 fast path giving ≈ `2n/(n−f)·Δ`). [`BbMajority`]
//! implements that fast-path protocol on top of [`TrustGraph`] /
//! [`TrustCast`].

mod bb_majority;
mod trustcast;

pub use bb_majority::{BbMajority, MajProposal, MajVote, MajorityMsg};
pub use trustcast::{trustcast_deadline, TrustCast, TrustCastMsg, TrustGraph};

use gcl_crypto::Keychain;
use gcl_sim::{Admission, AdversaryMix, ScenarioRegistry, ScenarioSpec, ValidityMode};
use gcl_types::Duration;

/// Registers this module's scenario family (`bb_majority`).
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "bb_majority",
        "TrustCast fast-path BB (Wan et al.) — n/2 <= f < n",
        Admission::Majority,
        ValidityMode::Broadcast,
        ScenarioSpec::lockstep("bb_majority", 4, 2, Duration::from_micros(1_000))
            .with_seed(207)
            .with_adversary(AdversaryMix::TrailingSilent { count: u32::MAX }),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                BbMajority::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
}
