//! Trust tracking and flooding for the dishonest-majority protocol.
//!
//! Wan et al. [34] build their expected-constant-round BB for `f ≥ n/2` on
//! a *trust graph* plus a *TrustCast* primitive: every signed unit is
//! flooded (forwarded once by everyone), and a party that fails to deliver
//! its expected unit by a deadline proportional to `n/(n−f)` is removed
//! from the local trust set; transferable misbehavior proofs (equivocation,
//! double votes) also remove trust and are themselves flooded.
//!
//! We reproduce the per-party trust set, the flood-with-dedup machinery and
//! the deadline arithmetic. The full Wan-et-al graph-diameter maintenance
//! and randomized leader election only affect *expected worst-case* rounds,
//! which Table 1 does not cover; `DESIGN.md` documents the substitution.

use gcl_types::{Config, Duration, PartyId};
use std::collections::BTreeSet;

/// A party's local view of whom it still trusts.
///
/// Honest parties never lose each other's trust: every honest unit is
/// flooded and arrives well inside the deadline, and honest parties never
/// produce misbehavior proofs against each other.
///
/// # Examples
///
/// ```
/// use gcl_core::dishonest::TrustGraph;
/// use gcl_types::{Config, PartyId};
///
/// let cfg = Config::new(4, 2)?;
/// let mut trust = TrustGraph::new(cfg);
/// assert_eq!(trust.trusted_count(), 4);
/// trust.distrust(PartyId::new(3));
/// assert!(!trust.trusts(PartyId::new(3)));
/// assert_eq!(trust.trusted_count(), 3);
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustGraph {
    trusted: BTreeSet<PartyId>,
}

impl TrustGraph {
    /// Everyone starts trusted.
    pub fn new(config: Config) -> Self {
        TrustGraph {
            trusted: config.parties().collect(),
        }
    }

    /// Whether `p` is still trusted.
    pub fn trusts(&self, p: PartyId) -> bool {
        self.trusted.contains(&p)
    }

    /// Removes `p`; returns `true` if it was still trusted.
    pub fn distrust(&mut self, p: PartyId) -> bool {
        self.trusted.remove(&p)
    }

    /// Number of still-trusted parties.
    pub fn trusted_count(&self) -> usize {
        self.trusted.len()
    }

    /// Iterates over the trusted parties in id order.
    pub fn iter(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.trusted.iter().copied()
    }

    /// Whether `voters` covers the trusted set.
    pub fn covered_by(&self, voters: &BTreeSet<PartyId>) -> bool {
        self.trusted.is_subset(voters)
    }
}

/// TrustCast deadline: `(⌊n/(n−f)⌋ + 1) · Δ` — the flood time through a
/// trust graph whose diameter Wan et al. bound by `n/(n−f)`.
pub fn trustcast_deadline(config: Config, big_delta: Duration) -> Duration {
    let k = config.n() / (config.n() - config.f());
    big_delta * (k as u64 + 1)
}

/// Flood-with-dedup bookkeeping: remembers which units were already
/// forwarded so each is relayed at most once.
#[derive(Debug, Clone, Default)]
pub struct TrustCast {
    seen: BTreeSet<u64>,
}

/// Units floodable by [`TrustCast`]: anything with a stable dedup key.
pub trait TrustCastMsg {
    /// A collision-resistant identity for dedup (e.g. the first 8 bytes of
    /// the unit's digest).
    fn dedup_key(&self) -> u64;
}

impl TrustCast {
    /// Fresh flood state.
    pub fn new() -> Self {
        TrustCast::default()
    }

    /// Returns `true` exactly once per unit: the caller should forward it.
    pub fn first_sighting(&mut self, unit: &impl TrustCastMsg) -> bool {
        self.seen.insert(unit.dedup_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Unit(u64);
    impl TrustCastMsg for Unit {
        fn dedup_key(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn trust_starts_complete() {
        let cfg = Config::new(6, 4).unwrap();
        let t = TrustGraph::new(cfg);
        assert_eq!(t.trusted_count(), 6);
        assert!(cfg.parties().all(|p| t.trusts(p)));
        assert_eq!(t.iter().count(), 6);
    }

    #[test]
    fn distrust_is_idempotent() {
        let cfg = Config::new(4, 2).unwrap();
        let mut t = TrustGraph::new(cfg);
        assert!(t.distrust(PartyId::new(1)));
        assert!(!t.distrust(PartyId::new(1)));
        assert_eq!(t.trusted_count(), 3);
    }

    #[test]
    fn coverage_check() {
        let cfg = Config::new(4, 2).unwrap();
        let mut t = TrustGraph::new(cfg);
        t.distrust(PartyId::new(3));
        let voters: BTreeSet<PartyId> = (0..3).map(PartyId::new).collect();
        assert!(t.covered_by(&voters));
        let fewer: BTreeSet<PartyId> = (0..2).map(PartyId::new).collect();
        assert!(!t.covered_by(&fewer));
    }

    #[test]
    fn deadline_scales_with_resilience_ratio() {
        let d = Duration::from_micros(100);
        // n = 4, f = 2: k = 2, deadline 3Δ.
        assert_eq!(
            trustcast_deadline(Config::new(4, 2).unwrap(), d),
            Duration::from_micros(300)
        );
        // n = 10, f = 8: k = 5, deadline 6Δ.
        assert_eq!(
            trustcast_deadline(Config::new(10, 8).unwrap(), d),
            Duration::from_micros(600)
        );
        // n = 4, f = 1: k = 1, deadline 2Δ.
        assert_eq!(
            trustcast_deadline(Config::new(4, 1).unwrap(), d),
            Duration::from_micros(200)
        );
    }

    #[test]
    fn flood_dedup() {
        let mut tc = TrustCast::new();
        assert!(tc.first_sighting(&Unit(5)));
        assert!(!tc.first_sighting(&Unit(5)));
        assert!(tc.first_sighting(&Unit(6)));
    }
}
