//! Theorem 10 / Figures 7 & 11: with unsynchronized start and `f > n/3`,
//! good-case latency below `Δ + 1.5δ` is impossible — and Figure 9's
//! protocol meets the bound exactly.
//!
//! The proof's executions E1–E4 revolve around two ingredients we replay
//! here: clock skew `σ = 0.5δ` (the provably unavoidable skew) and
//! asymmetric delays `Δ` vs `δ` on the links toward the would-be-fast
//! committers `g` and `h`. [`tightness_execution`] is E1: an honest
//! broadcaster, groups starting 0.5δ late, everyone commits by `Δ + 1.5δ`
//! (+σ). [`adversarial_execution`] is the E2/E3 shape: an equivocating
//! broadcaster with the proof's delay pattern — the real protocol must
//! *not* split (it won't: it waits exactly long enough, which is the whole
//! point of the bound being tight).
//!
//! **Sim-only** (`thm10/adversarial-unsync` in [`super::SIM_ONLY_SCHEDULES`]): the
//! schedule pins scripted actions and per-link delivery instants that
//! only the deterministic simulator can honor; see the
//! [module docs](super) for why wall-clock backends reject it.

use crate::sync::{UnsyncBb, UnsyncMsg};
use gcl_crypto::Keychain;
use gcl_sim::{
    DelayRule, FixedDelay, LinkDelay, Outcome, PartySet, ScheduleOracle, Scripted, ScriptedAction,
    Simulation, TimingModel,
};
use gcl_types::{Config, Duration, LocalTime, PartyId, SkewSchedule, Value};

const DELTA: Duration = Duration::from_micros(100); // δ
const BIG_DELTA: Duration = Duration::from_micros(1_000); // Δ
const M: u64 = 10;

fn model() -> TimingModel {
    TimingModel::Synchrony {
        delta: DELTA,
        big_delta: BIG_DELTA,
    }
}

/// E1: honest broadcaster, skew `σ = 0.5δ` on some parties, all delays δ.
/// Returns the outcome; the good-case latency is ≤ `Δ + 1.5δ + σ` measured
/// from the broadcaster's start.
pub fn tightness_execution(n: usize, f: usize) -> Outcome {
    let cfg = Config::new(n, f).expect("valid config");
    let chain = Keychain::generate(n, 124);
    let late: Vec<(PartyId, Duration)> = (1..n as u32)
        .filter(|i| i % 2 == 0)
        .map(|i| (PartyId::new(i), DELTA.halved()))
        .collect();
    Simulation::build(cfg)
        .timing(model())
        .oracle(FixedDelay::new(DELTA))
        .skew(SkewSchedule::with_late_parties(n, &late))
        .spawn_honest(|p| {
            UnsyncBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                M,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(7)),
            )
        })
        .run()
}

/// E2/E3 shape at `n = 5, f = 2`: Byzantine broadcaster (P0) sends 0 to
/// `{P1 (g), P2 (A)}` and 1 to `{P3 (C)}`, stays silent toward `P4 (h)`;
/// `C` starts `0.5δ` late; `C → g` traffic crawls at Δ. The real protocol
/// must keep agreement.
pub fn adversarial_execution() -> Outcome {
    let cfg = Config::new(5, 2).expect("valid config");
    let chain = Keychain::generate(5, 125);
    let s = chain.signer(PartyId::new(0));
    let p0 = crate::sync::Fig9Proposal::new(&s, Value::ZERO);
    let p1 = crate::sync::Fig9Proposal::new(&s, Value::ONE);
    let actions = vec![
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(1),
            msg: UnsyncMsg::Propose(p0),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(2),
            msg: UnsyncMsg::Propose(p0),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(3),
            msg: UnsyncMsg::Propose(p1),
        },
    ];
    let oracle: ScheduleOracle<UnsyncMsg> = ScheduleOracle::new(DELTA).rule(DelayRule::link(
        PartySet::One(PartyId::new(3)),
        PartySet::One(PartyId::new(1)),
        LinkDelay::Finite(BIG_DELTA),
    ));
    Simulation::build(cfg)
        .timing(model())
        .oracle(oracle)
        .skew(SkewSchedule::with_late_parties(
            5,
            &[(PartyId::new(3), DELTA.halved())],
        ))
        .byzantine(PartyId::new(0), Scripted::new(actions))
        .spawn_honest(|p| {
            UnsyncBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                M,
                PartyId::new(0),
                None,
            )
        })
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_within_bound() {
        let o = tightness_execution(5, 2);
        assert!(o.validity_holds(Value::new(7)));
        let bound = BIG_DELTA + DELTA + DELTA.halved() + DELTA.halved(); // Δ + 1.5δ + σ
        assert!(
            o.good_case_latency().unwrap() <= bound,
            "measured {} > bound {bound}",
            o.good_case_latency().unwrap()
        );
    }

    #[test]
    fn tightness_not_faster_than_bound() {
        // No honest party commits before Δ + 1.5δ measured on its own
        // clock — the matching half of "tight".
        let o = tightness_execution(5, 2);
        let floor = BIG_DELTA + DELTA; // conservative: Δ + δ < Δ + 1.5δ
        for c in o.honest_commits() {
            assert!(c.local.as_micros() >= floor.as_micros());
        }
    }

    #[test]
    fn adversarial_execution_keeps_agreement() {
        let o = adversarial_execution();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "BA fallback terminates everyone");
    }
}
