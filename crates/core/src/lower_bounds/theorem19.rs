//! Theorem 19 / Figure 12: dishonest-majority good-case latency is at
//! least `(⌊n/(n−f)⌋ − 1)Δ`.
//!
//! The proof chains `2⌊n/h⌋` groups so that information crosses one Δ-hop
//! per round. Operationally we check both sides of Table 1's last row: the
//! measured good case of [`crate::dishonest::BbMajority`] (with the
//! Byzantine budget spent on silence, the worst good-case adversary) always
//! sits **between** the lower bound and the `O(n/(n−f))Δ` upper bound.
//!
//! **Sim-only** (`thm19/majority-bound` in [`super::SIM_ONLY_SCHEDULES`]): the
//! schedule pins scripted actions and per-link delivery instants that
//! only the deterministic simulator can honor; see the
//! [module docs](super) for why wall-clock backends reject it.

use crate::dishonest::BbMajority;
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Outcome, Silent, Simulation, TimingModel};
use gcl_types::{Config, Duration, PartyId, Value};

/// `(⌊n/(n−f)⌋ − 1)Δ`.
pub fn lower_bound(config: Config, big_delta: Duration) -> Duration {
    big_delta * config.majority_lower_bound_factor() as u64
}

/// The implementation's deadline-driven upper bound:
/// `Δ + (⌊n/(n−f)⌋ + 1)Δ`.
pub fn upper_bound(config: Config, big_delta: Duration) -> Duration {
    big_delta + BbMajority::vote_deadline(config, big_delta)
}

/// Good case with all `f` Byzantine parties silent.
pub fn good_case(n: usize, f: usize, big_delta: Duration) -> Outcome {
    let cfg = Config::new(n, f).expect("valid config");
    let chain = Keychain::generate(n, 126);
    let mut b = Simulation::build(cfg)
        .timing(TimingModel::lockstep(big_delta))
        .oracle(FixedDelay::new(big_delta));
    for i in (n - f) as u32..n as u32 {
        b = b.byzantine(PartyId::new(i), Silent::new());
    }
    b.spawn_honest(|p| {
        BbMajority::new(
            cfg,
            chain.signer(p),
            chain.pki(),
            big_delta,
            PartyId::new(0),
            (p == PartyId::new(0)).then_some(Value::new(6)),
        )
    })
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: Duration = Duration::from_micros(100);

    #[test]
    fn measured_latency_between_bounds() {
        for (n, f) in [(4, 2), (6, 4), (8, 6), (10, 8)] {
            let cfg = Config::new(n, f).unwrap();
            let o = good_case(n, f, DELTA);
            assert!(o.validity_holds(Value::new(6)), "n={n} f={f}");
            let lat = o.good_case_latency().unwrap();
            assert!(
                lat >= lower_bound(cfg, DELTA),
                "n={n} f={f}: {lat} below the Theorem 19 bound"
            );
            assert!(
                lat <= upper_bound(cfg, DELTA),
                "n={n} f={f}: {lat} above the O(n/(n−f))Δ bound"
            );
        }
    }

    #[test]
    fn bound_factors() {
        let d = Duration::from_micros(100);
        assert_eq!(
            lower_bound(Config::new(4, 2).unwrap(), d),
            Duration::from_micros(100)
        );
        assert_eq!(
            lower_bound(Config::new(10, 8).unwrap(), d),
            Duration::from_micros(400)
        );
        assert!(
            upper_bound(Config::new(10, 8).unwrap(), d)
                > lower_bound(Config::new(10, 8).unwrap(), d)
        );
    }
}
