//! Theorem 7 / Figure 4: 2-round good-case psync-BB needs `n ≥ 5f − 1`.
//!
//! At `n = 5f − 2` the adversary lets one honest party commit `v` on the
//! fast path with the help of Byzantine votes, then feeds the view change a
//! quorum whose *plain majority* points to `v'` — the tie FaB's rule cannot
//! break below `5f − 1`. Concretely (`f = 2`, `n = 8`, quorum `6`):
//!
//! * `s = P0` (broadcaster) and `x = P7` are Byzantine.
//! * `s` proposes 0 to `P1..P4` and 1 to `P5, P6`.
//! * View-1 votes are delivered only to `P4`; with `s` and `x` voting 0
//!   toward it, `P4` assembles 6 votes and commits 0.
//! * Everyone else times out. `s` and `x` claim in their view-change
//!   messages to have voted 1, so the view-2 leader `P1` sees majority 1,
//!   re-proposes 1, and the remaining honest parties commit 1.
//!
//! The `(5f−1)`-psync-VBB protocol survives the analogous attack at its own
//! boundary `n = 5f − 1` because its certificate rule counts `2f − 1` /
//! `2f` leader-aware entries instead of a plain majority (Figure 2).
//!
//! **Sim-only** (`thm7/split-fab-at-5f-2` in [`super::SIM_ONLY_SCHEDULES`]): the
//! schedule pins scripted actions and per-link delivery instants that
//! only the deterministic simulator can honor; see the
//! [module docs](super) for why wall-clock backends reject it.

use crate::strawman::{FabMsg, FabTwoRound, FabViewChange};
use gcl_crypto::Keychain;
use gcl_sim::{
    DelayRule, LinkDelay, Outcome, PartySet, ScheduleOracle, Scripted, ScriptedAction, Simulation,
    TimingModel,
};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value, View};

/// Runs the Figure 4 style schedule against the FaB strawman at
/// `n = 5f − 2 = 8`, `f = 2`. Agreement is violated in the returned
/// outcome.
pub fn split_fab_at_5f_minus_2() -> Outcome {
    let f = 2;
    let n = 5 * f - 2; // 8
    let cfg = Config::new(n, f).expect("valid config");
    let chain = Keychain::generate(n, 121);
    let big_delta = Duration::from_micros(100);
    let fast = Duration::from_micros(10);
    let s = chain.signer(PartyId::new(0));
    let x = chain.signer(PartyId::new(7));

    // Byzantine broadcaster s = P0.
    let mut s_actions = Vec::new();
    for p in 1..=4u32 {
        s_actions.push(ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(p),
            msg: FabMsg::Propose(crate::strawman::fab_proposal(&s, Value::ZERO, View::FIRST)),
        });
    }
    for p in 5..=6u32 {
        s_actions.push(ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(p),
            msg: FabMsg::Propose(crate::strawman::fab_proposal(&s, Value::ONE, View::FIRST)),
        });
    }
    // s votes 0 toward P4 only (completing its quorum), then lies "voted 1"
    // in the view change, and helps complete the view-2 quorum.
    s_actions.push(ScriptedAction {
        at: LocalTime::from_micros(20),
        to: PartyId::new(4),
        msg: FabMsg::Vote(crate::strawman::fab_vote(&s, Value::ZERO, View::FIRST)),
    });
    for p in 1..=6u32 {
        s_actions.push(ScriptedAction {
            at: LocalTime::from_micros(450),
            to: PartyId::new(p),
            msg: FabMsg::ViewChange(FabViewChange::new(&s, View::FIRST, Some(Value::ONE))),
        });
        s_actions.push(ScriptedAction {
            at: LocalTime::from_micros(700),
            to: PartyId::new(p),
            msg: FabMsg::Vote(crate::strawman::fab_vote(&s, Value::ONE, View::new(2))),
        });
    }

    // Byzantine x = P7: same vote toward P4, same view-change lie.
    let mut x_actions = vec![ScriptedAction {
        at: LocalTime::from_micros(20),
        to: PartyId::new(4),
        msg: FabMsg::Vote(crate::strawman::fab_vote(&x, Value::ZERO, View::FIRST)),
    }];
    for p in 1..=6u32 {
        x_actions.push(ScriptedAction {
            at: LocalTime::from_micros(450),
            to: PartyId::new(p),
            msg: FabMsg::ViewChange(FabViewChange::new(&x, View::FIRST, Some(Value::ONE))),
        });
    }

    // Pre-GST scheduling: view-1 votes reach only P4, and P2's "voted 0"
    // view-change message crawls toward the view-2 leader so the leader's
    // quorum is exactly the proof's {P1:0, P3:0, P5:1, P6:1, s:1, x:1} —
    // majority 1, as in the Figure 4 construction.
    let oracle: ScheduleOracle<FabMsg> = ScheduleOracle::new(fast)
        .rule(
            DelayRule::link(
                PartySet::Any,
                PartySet::In((1..=3).chain(5..=6).map(PartyId::new).collect()),
                LinkDelay::Never,
            )
            .when(|m: &FabMsg| matches!(m, FabMsg::Vote(v) if v.view == View::FIRST)),
        )
        .rule(
            DelayRule::link(
                PartySet::One(PartyId::new(2)),
                PartySet::One(PartyId::new(1)),
                LinkDelay::Finite(Duration::from_micros(2_000_000)),
            )
            .when(|m: &FabMsg| matches!(m, FabMsg::ViewChange(_))),
        );

    Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(oracle)
        .byzantine(PartyId::new(0), Scripted::new(s_actions))
        .byzantine(PartyId::new(7), Scripted::new(x_actions))
        .spawn_honest(|p| FabTwoRound::new(cfg, chain.signer(p), chain.pki(), big_delta, None))
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fab_strawman_splits_at_5f_minus_2() {
        let o = split_fab_at_5f_minus_2();
        assert!(
            !o.agreement_holds(),
            "Theorem 7: plain-majority view change is unsafe at n = 5f − 2"
        );
        // The lone fast-path committer holds 0, the post-view-change
        // majority holds 1.
        assert_eq!(
            o.commit_of(PartyId::new(4)).map(|c| c.value),
            Some(Value::ZERO)
        );
        assert_eq!(
            o.commit_of(PartyId::new(1)).map(|c| c.value),
            Some(Value::ONE)
        );
    }
}
