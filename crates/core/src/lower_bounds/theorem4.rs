//! Theorem 4: no BRB commits in 1 asynchronous round.
//!
//! Execution 3 of the proof: the Byzantine broadcaster sends 0 to group A
//! and 1 to group B. A 1-round protocol commits on the proposal alone, so A
//! commits 0 and B commits 1 — before any round-1 message could warn them.
//!
//! **Sim-only** (`thm4/split-one-round-brb` in
//! [`super::SIM_ONLY_SCHEDULES`]): the split relies on the scripted
//! equivocation landing at exact local instants; see the
//! [module docs](super) for why wall-clock backends reject it.

use crate::asynchrony::TwoRoundBrb;
use crate::strawman::{OneRoundBrb, OneRoundMsg};
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Simulation, TimingModel};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};

/// The equivocation schedule against the 1-round strawman: group A =
/// parties `1..=split`, group B = the rest. Returns the outcome — agreement
/// is violated.
pub fn split_one_round_brb(n: usize, f: usize, split: u32) -> Outcome {
    let cfg = Config::new(n, f).expect("valid config");
    let mut actions = Vec::new();
    for p in 1..n as u32 {
        let v = if p <= split { Value::ZERO } else { Value::ONE };
        actions.push(ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(p),
            msg: OneRoundMsg(v),
        });
    }
    Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(FixedDelay::new(Duration::from_micros(100)))
        .byzantine(PartyId::new(0), Scripted::new(actions))
        .spawn_honest(|p| OneRoundBrb::new(cfg, p, PartyId::new(0), None))
        .run()
}

/// The same schedule against the real 2-round BRB (Figure 1): the vote
/// round saves agreement.
pub fn split_two_round_brb(n: usize, f: usize, split: u32) -> Outcome {
    let cfg = Config::new(n, f).expect("valid config");
    let chain = Keychain::generate(n, 120);
    let group_a: Vec<PartyId> = (1..=split).map(PartyId::new).collect();
    Simulation::build(cfg)
        .timing(TimingModel::Asynchrony)
        .oracle(FixedDelay::new(Duration::from_micros(100)))
        .byzantine(
            PartyId::new(0),
            crate::asynchrony::EquivocatingBroadcaster {
                group_a,
                value_a: Value::ZERO,
                value_b: Value::ONE,
            },
        )
        .spawn_honest(|p| {
            TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
        })
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_brb_violates_agreement() {
        let o = split_one_round_brb(4, 1, 1);
        assert!(!o.agreement_holds(), "Theorem 4's violation materializes");
        // Both sides committed within 1 round.
        for c in o.honest_commits() {
            assert_eq!(c.round, 1);
        }
    }

    #[test]
    fn violation_scales() {
        for (n, f, split) in [(4, 1, 2), (7, 2, 3), (10, 3, 5)] {
            assert!(!split_one_round_brb(n, f, split).agreement_holds(), "n={n}");
        }
    }

    #[test]
    fn two_round_brb_survives_same_adversary() {
        let o = split_two_round_brb(4, 1, 1);
        o.assert_agreement();
    }
}
