//! Theorem 9: under synchrony with `f ≥ n/3`, no BRB commits before
//! `Δ + δ`.
//!
//! Execution 3 of the proof at `n = 3, f = 1`: the Byzantine broadcaster
//! proposes 0 to one honest party and 1 to the other and double-votes both
//! ways. A protocol that commits on `n − f` votes *without* waiting the Δ
//! equivocation window splits within `2δ < Δ + δ`; Figure 5's protocol
//! ([`crate::sync::ThirdBb`]) survives because the conflicting forwarded
//! proposals land inside every honest party's window.
//!
//! **Sim-only** (`thm9/split-early-commit` in [`super::SIM_ONLY_SCHEDULES`]): the
//! schedule pins scripted actions and per-link delivery instants that
//! only the deterministic simulator can honor; see the
//! [module docs](super) for why wall-clock backends reject it.

use crate::strawman::{EarlyCommitBb, EarlyMsg, EarlyVote};
use crate::sync::{ThirdBb, ThirdMsg};
use gcl_crypto::Keychain;
use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Simulation, TimingModel};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};

const DELTA: Duration = Duration::from_micros(100);
const BIG_DELTA: Duration = Duration::from_micros(1_000);

fn model() -> TimingModel {
    TimingModel::Synchrony {
        delta: DELTA,
        big_delta: BIG_DELTA,
    }
}

/// Runs the equivocate-and-double-vote schedule against the early-commit
/// strawman (`n = 3, f = 1`). Agreement is violated below `Δ + δ`.
pub fn split_early_commit() -> Outcome {
    let cfg = Config::new(3, 1).expect("valid config");
    let chain = Keychain::generate(3, 122);
    let s = chain.signer(PartyId::new(0));
    let actions = vec![
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(1),
            msg: EarlyMsg::Propose(Value::ZERO),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(2),
            msg: EarlyMsg::Propose(Value::ONE),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(1),
            msg: EarlyMsg::Vote(EarlyVote::new(&s, Value::ZERO)),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(2),
            msg: EarlyMsg::Vote(EarlyVote::new(&s, Value::ONE)),
        },
    ];
    Simulation::build(cfg)
        .timing(model())
        .oracle(FixedDelay::new(DELTA))
        .byzantine(PartyId::new(0), Scripted::new(actions))
        .spawn_honest(|p| {
            EarlyCommitBb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0), None)
        })
        .run()
}

/// The same adversary against Figure 5's protocol: the Δ window catches
/// the equivocation and agreement survives.
pub fn same_adversary_against_fig5() -> Outcome {
    let cfg = Config::new(3, 1).expect("valid config");
    let chain = Keychain::generate(3, 123);
    let s = chain.signer(PartyId::new(0));
    let p0 = crate::sync::fig5_proposal(&s, Value::ZERO);
    let p1 = crate::sync::fig5_proposal(&s, Value::ONE);
    let actions = vec![
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(1),
            msg: ThirdMsg::Propose(p0),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(2),
            msg: ThirdMsg::Propose(p1),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(1),
            msg: ThirdMsg::Vote(crate::sync::fig5_vote(&s, p0)),
        },
        ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(2),
            msg: ThirdMsg::Vote(crate::sync::fig5_vote(&s, p1)),
        },
    ];
    Simulation::build(cfg)
        .timing(model())
        .oracle(FixedDelay::new(DELTA))
        .byzantine(PartyId::new(0), Scripted::new(actions))
        .spawn_honest(|p| {
            ThirdBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                None,
            )
        })
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_commit_splits_below_delta_plus_delta() {
        let o = split_early_commit();
        assert!(!o.agreement_holds(), "Theorem 9 violation materializes");
        // Both commits happened strictly before Δ + δ.
        for c in o.honest_commits() {
            assert!(
                c.local.as_micros() < (BIG_DELTA + DELTA).as_micros(),
                "the overclaimed commit is below the bound"
            );
        }
    }

    #[test]
    fn fig5_survives_same_adversary() {
        let o = same_adversary_against_fig5();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "BA fallback terminates");
    }
}
