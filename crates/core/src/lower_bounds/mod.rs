//! The paper's lower-bound constructions as runnable adversarial
//! executions.
//!
//! Each theorem's proof builds a handful of executions that are
//! indistinguishable to some honest party; run against a protocol that
//! *overclaims* latency (the [`crate::strawman`] module) they produce the
//! very agreement violation the proof derives, and run against the paper's
//! matching protocols they leave safety intact. Each module returns
//! [`gcl_sim::Outcome`]s so tests, examples and the bench harness can all
//! replay them.
//!
//! | Module | Paper | Breaks | Spares |
//! |---|---|---|---|
//! | [`theorem4`] | Thm 4 (1-round BRB impossible) | `OneRoundBrb` | `TwoRoundBrb` |
//! | [`theorem7`] | Thm 7 / Fig 4 (2-round psync needs `n ≥ 5f−1`) | `FabTwoRound` at `n = 5f−2` | `VbbFiveFMinusOne` at `n = 5f−1` |
//! | [`theorem9`] | Thm 9 (sync commit < Δ+δ unsafe at `f = n/3`) | `EarlyCommitBb` | `ThirdBb` |
//! | [`theorem10`] | Thm 10 / Fig 7+11 (Δ+1.5δ with unsync start) | — (tightness + safety) | `UnsyncBb` |
//! | [`theorem19`] | Thm 19 / Fig 12 (`(⌊n/(n−f)⌋−1)Δ` majority LB) | — (bound check) | `BbMajority` |

pub mod theorem10;
pub mod theorem19;
pub mod theorem4;
pub mod theorem7;
pub mod theorem9;
