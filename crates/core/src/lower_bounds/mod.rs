//! The paper's lower-bound constructions as runnable adversarial
//! executions.
//!
//! Each theorem's proof builds a handful of executions that are
//! indistinguishable to some honest party; run against a protocol that
//! *overclaims* latency (the [`crate::strawman`] module) they produce the
//! very agreement violation the proof derives, and run against the paper's
//! matching protocols they leave safety intact. Each module returns
//! [`gcl_sim::Outcome`]s so tests, examples and the bench harness can all
//! replay them.
//!
//! | Module | Paper | Breaks | Spares |
//! |---|---|---|---|
//! | [`theorem4`] | Thm 4 (1-round BRB impossible) | `OneRoundBrb` | `TwoRoundBrb` |
//! | [`theorem7`] | Thm 7 / Fig 4 (2-round psync needs `n ≥ 5f−1`) | `FabTwoRound` at `n = 5f−2` | `VbbFiveFMinusOne` at `n = 5f−1` |
//! | [`theorem9`] | Thm 9 (sync commit < Δ+δ unsafe at `f = n/3`) | `EarlyCommitBb` | `ThirdBb` |
//! | [`theorem10`] | Thm 10 / Fig 7+11 (Δ+1.5δ with unsync start) | — (tightness + safety) | `UnsyncBb` |
//! | [`theorem19`] | Thm 19 / Fig 12 (`(⌊n/(n−f)⌋−1)Δ` majority LB) | — (bound check) | `BbMajority` |
//!
//! # Simulator-only, by design
//!
//! Every schedule here scripts the adversary at exact local instants
//! (`gcl_sim::Scripted`) and, for theorems 7/9/10/19, pins per-link
//! delivery times through a `gcl_sim::ScheduleOracle` — execution 3 of a
//! proof *is* its delivery schedule. Wall-clock backends (`gcl_net`'s
//! thread and socket runtimes) cannot honor "this vote arrives at exactly
//! `2δ` and that one at `Δ`" — scheduler jitter would silently turn the
//! proof's indistinguishability argument into a race, and a "replayed"
//! violation that only sometimes materializes is worse than none. The
//! schedules are therefore deliberately **not** registered as scenario
//! families: [`SIM_ONLY_SCHEDULES`] names them, and
//! `tests/lower_bound_gallery.rs` asserts that asking any execution
//! backend's registry path to run one is *cleanly rejected* as an unknown
//! family rather than silently diverging. The registered families the
//! schedules attack (`one_round_brb`, `fab2`, `early_commit_bb`, …) stay
//! wall-runnable — only the scripted adversaries are sim-bound.

pub mod theorem10;
pub mod theorem19;
pub mod theorem4;
pub mod theorem7;
pub mod theorem9;

/// The scripted lower-bound schedules, as stable keys. These are **not**
/// scenario-registry families and can never be: each one requires exact
/// delivery control that only the deterministic simulator provides (see
/// the [module docs](self)). The keys exist so tooling (and the gallery
/// test) can assert the rejection instead of discovering it by accident.
pub const SIM_ONLY_SCHEDULES: &[&str] = &[
    "thm4/split-one-round-brb",
    "thm7/split-fab-at-5f-2",
    "thm9/split-early-commit",
    "thm10/adversarial-unsync",
    "thm19/majority-bound",
];
