//! Synchronous Byzantine broadcast (paper Section 5).
//!
//! The complete categorization under synchrony, with the δ/Δ separation
//! (actual vs conservative delay bound) and the synchronized- vs
//! unsynchronized-start distinction:
//!
//! | Resilience | Start | Tight bound | Protocol |
//! |---|---|---|---|
//! | `0 < f < n/3` | unsync | `2δ` | [`TwoDeltaBb`] (Fig 10) |
//! | `f = n/3` | unsync | `Δ + δ` | [`ThirdBb`] (Fig 5) |
//! | `n/3 < f < n/2` | sync | `Δ + δ` | [`SyncStartBb`] (Fig 6) |
//! | `n/3 < f < n/2` | unsync | `Δ + 1.5δ` | [`UnsyncBb`] (Fig 9) |
//!
//! All four commit fast on a good day and fall back to a Byzantine
//! agreement on `lock` values otherwise; [`LockstepBa`] is that primitive
//! (Dolev–Strong over every party's input + plurality, lock-step rounds of
//! `3Δ` to tolerate clock skew ≤ Δ). [`DolevStrongBb`] is also exposed
//! stand-alone as the classical `f + 1`-round worst-case-optimal baseline.

mod ba;
mod bb_2delta;
mod bb_n3;
mod bb_sync_start;
mod bb_unsync;
mod dolev_strong;

pub use ba::{BaMsg, LockstepBa, BOT};
pub use bb_2delta::{Fig10Proposal, Fig10Vote, TwoDeltaBb, TwoDeltaMsg};
pub use bb_n3::{fig5_proposal, fig5_vote, Fig5Commit, Fig5Proposal, Fig5Vote, ThirdBb, ThirdMsg};
pub use bb_sync_start::{Fig6Proposal, Fig6Vote, SyncStartBb, SyncStartMsg};
pub use bb_unsync::{Fig9Proposal, Fig9Vote, UnsyncBb, UnsyncMsg};
pub use dolev_strong::{DolevStrongBb, DsMsg, DsRelay};

use gcl_crypto::Keychain;
use gcl_sim::{Admission, ScenarioRegistry, ScenarioSpec, SkewChoice, ValidityMode};
use gcl_types::{Duration, Value};

/// Registers this module's scenario families (`bb_2delta`, `bb_third`,
/// `bb_sync_start`, `bb_unsync`, `dolev_strong`).
pub(crate) fn register(reg: &mut ScenarioRegistry) {
    reg.register_fn(
        "bb_2delta",
        "2delta-BB (Fig 10) — 0 < f < n/3, unsynchronized start",
        Admission::UnderThird,
        ValidityMode::Broadcast,
        ScenarioSpec::synchronous("bb_2delta", 4, 1).with_seed(203),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "bb_third",
        "(Delta+delta)-n/3-BB (Fig 5) — f = n/3, unsynchronized start",
        Admission::ExactThird,
        ValidityMode::Broadcast,
        ScenarioSpec::synchronous("bb_third", 3, 1).with_seed(204),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "bb_sync_start",
        "(Delta+delta)-BB (Fig 6) — n/3 < f < n/2, synchronized start",
        Admission::ThirdToHalf,
        ValidityMode::Broadcast,
        ScenarioSpec::synchronous("bb_sync_start", 5, 2).with_seed(205),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "bb_unsync",
        "(Delta+1.5delta)-BB (Fig 9) — n/3 < f < n/2, unsynchronized start",
        Admission::ThirdToHalf,
        ValidityMode::Broadcast,
        ScenarioSpec::synchronous("bb_unsync", 5, 2)
            .with_seed(206)
            .with_skew(SkewChoice::OddHalfDelta),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.params.m,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
    reg.register_fn(
        "dolev_strong",
        "Dolev-Strong BB — f + 1 lock-step rounds, worst-case optimal",
        Admission::Any,
        ValidityMode::Broadcast,
        ScenarioSpec::lockstep("dolev_strong", 16, 5, Duration::from_micros(100))
            .with_seed(220)
            .with_input(Value::new(7)),
        |spec, backend| {
            let cfg = spec.config().expect("validated");
            let chain = Keychain::generate(spec.n, spec.seed);
            spec.run_protocol_on(backend, |p| {
                DolevStrongBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    spec.big_delta,
                    spec.broadcaster,
                    spec.input_for(p),
                )
            })
        },
    );
}
