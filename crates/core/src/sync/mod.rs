//! Synchronous Byzantine broadcast (paper Section 5).
//!
//! The complete categorization under synchrony, with the δ/Δ separation
//! (actual vs conservative delay bound) and the synchronized- vs
//! unsynchronized-start distinction:
//!
//! | Resilience | Start | Tight bound | Protocol |
//! |---|---|---|---|
//! | `0 < f < n/3` | unsync | `2δ` | [`TwoDeltaBb`] (Fig 10) |
//! | `f = n/3` | unsync | `Δ + δ` | [`ThirdBb`] (Fig 5) |
//! | `n/3 < f < n/2` | sync | `Δ + δ` | [`SyncStartBb`] (Fig 6) |
//! | `n/3 < f < n/2` | unsync | `Δ + 1.5δ` | [`UnsyncBb`] (Fig 9) |
//!
//! All four commit fast on a good day and fall back to a Byzantine
//! agreement on `lock` values otherwise; [`LockstepBa`] is that primitive
//! (Dolev–Strong over every party's input + plurality, lock-step rounds of
//! `3Δ` to tolerate clock skew ≤ Δ). [`DolevStrongBb`] is also exposed
//! stand-alone as the classical `f + 1`-round worst-case-optimal baseline.

mod ba;
mod bb_2delta;
mod bb_n3;
mod bb_sync_start;
mod bb_unsync;
mod dolev_strong;

pub use ba::{BaMsg, LockstepBa, BOT};
pub use bb_2delta::{TwoDeltaBb, TwoDeltaMsg};
pub use bb_n3::{fig5_proposal, fig5_vote, Fig5Proposal, Fig5Vote, ThirdBb, ThirdMsg};
pub use bb_sync_start::{SyncStartBb, SyncStartMsg};
pub use bb_unsync::{Fig9Proposal, UnsyncBb, UnsyncMsg};
pub use dolev_strong::{DolevStrongBb, DsMsg, DsRelay};
