//! Figure 10: the `2δ`-BB protocol — `0 < f < n/3`, unsynchronized start,
//! optimal good-case latency `2δ` (Theorems 8 and 16).
//!
//! ```text
//! Init:     lock = ⊥, σ := Δ (actual skew ≤ δ, unknown).
//! Propose:  L sends ⟨propose, v⟩_L to all.
//! Vote:     on the first valid proposal, multicast ⟨vote, v⟩_i.
//! Commit:   on n−f votes for v at local time t: forward them, lock = v;
//!           if t ≤ 2Δ + σ, commit v.
//! BA:       at local 3Δ + 2σ, run BA(lock); commit its output if needed.
//! ```
//!
//! The fast path needs only quorum intersection (`f < n/3`): two values
//! can never both gather `n − f` votes, so `lock` is unique across honest
//! parties whenever anyone commits, and BA validity finishes the job.

use super::ba::{BaMsg, LockstepBa, BOT};
use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A signed vote `⟨vote, v⟩_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig10Vote {
    /// Voted value.
    pub value: Value,
    /// Voter signature over `("fig10-vote", value)`.
    pub sig: Signature,
}

impl Fig10Vote {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig10-vote", value))
    }

    fn new(signer: &Signer, value: Value) -> Self {
        Fig10Vote {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Signed proposal `⟨propose, v⟩_L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig10Proposal {
    /// Proposed value.
    pub value: Value,
    /// Broadcaster signature over `("fig10-prop", value)`.
    pub sig: Signature,
}

impl Fig10Proposal {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig10-prop", value))
    }

    fn new(signer: &Signer, value: Value) -> Self {
        Fig10Proposal {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.sig.signer() == broadcaster
            && v.verify(broadcaster, Self::digest(self.value), &self.sig)
    }
}

/// Wire messages of the `2δ`-BB protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoDeltaMsg {
    /// Step 1.
    Propose(Fig10Proposal),
    /// Step 2.
    Vote(Fig10Vote),
    /// Step 3: forwarded quorum.
    VoteBundle(Vec<Fig10Vote>),
    /// Step 4: embedded Byzantine agreement traffic.
    Ba(BaMsg),
}

gcl_types::wire_struct!(Fig10Proposal { value, sig });
gcl_types::wire_struct!(Fig10Vote { value, sig });

/// Wire codec: one tag byte per protocol step.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for TwoDeltaMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                TwoDeltaMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                TwoDeltaMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                TwoDeltaMsg::VoteBundle(vs) => {
                    buf.push(3);
                    vs.encode(buf);
                }
                TwoDeltaMsg::Ba(m) => {
                    buf.push(4);
                    m.encode(buf);
                }
            }
        }
    }

    impl Decode for TwoDeltaMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(TwoDeltaMsg::Propose(Decode::decode(input)?)),
                2 => Ok(TwoDeltaMsg::Vote(Decode::decode(input)?)),
                3 => Ok(TwoDeltaMsg::VoteBundle(Decode::decode(input)?)),
                4 => Ok(TwoDeltaMsg::Ba(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "TwoDeltaMsg",
                    tag,
                }),
            }
        }
    }
}

const TAG_BA_START: u64 = 1;

/// One party of the `2δ`-BB protocol (Figure 10).
///
/// # Examples
///
/// With actual delay δ = 100µs and conservative Δ = 1000µs the protocol
/// commits at `2δ = 200µs` — latency tracks the *actual* network, not the
/// pessimistic bound:
///
/// ```
/// use gcl_core::sync::TwoDeltaBb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let chain = Keychain::generate(4, 5);
/// let (delta, big_delta) = (Duration::from_micros(100), Duration::from_micros(1_000));
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Synchrony { delta, big_delta })
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         TwoDeltaBb::new(cfg, chain.signer(p), chain.pki(), big_delta, PartyId::new(0),
///                         (p == PartyId::new(0)).then_some(Value::new(3)))
///     })
///     .run();
/// assert_eq!(outcome.good_case_latency(), Some(delta * 2));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct TwoDeltaBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    broadcaster: PartyId,
    input: Option<Value>,
    lock: Value,
    voted: bool,
    committed: bool,
    forwarded: bool,
    votes: BTreeMap<Value, BTreeMap<PartyId, Fig10Vote>>,
    ba: LockstepBa,
}

impl TwoDeltaBb {
    /// Creates the party-side state. The protocol sets its internal skew
    /// parameter σ := Δ, as the paper prescribes when δ is unknown.
    ///
    /// # Panics
    ///
    /// Panics if `f ≥ n/3` or the input/broadcaster roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert!(3 * config.f() < config.n(), "2δ-BB requires f < n/3");
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        let verifier = verifier.into();
        let ba = LockstepBa::new(
            config,
            signer.clone(),
            Arc::clone(verifier.pki()),
            big_delta,
        );
        TwoDeltaBb {
            config,
            signer,
            verifier,
            big_delta,
            broadcaster,
            input,
            lock: BOT,
            voted: false,
            committed: false,
            forwarded: false,
            votes: BTreeMap::new(),
            ba,
        }
    }

    /// Local commit deadline `2Δ + σ` with σ := Δ.
    fn commit_deadline(&self) -> Duration {
        self.big_delta * 3
    }

    /// BA invocation time `3Δ + 2σ` with σ := Δ.
    fn ba_time(&self) -> Duration {
        self.big_delta * 5
    }

    fn on_vote(&mut self, vote: Fig10Vote, ctx: &mut dyn Context<TwoDeltaMsg>) {
        if !vote.verify(&self.verifier) {
            return;
        }
        let quorum = self.config.quorum();
        let bucket = self.votes.entry(vote.value).or_default();
        bucket.insert(vote.voter(), vote);
        if bucket.len() >= quorum && !self.forwarded {
            self.forwarded = true;
            let bundle: Vec<Fig10Vote> = bucket.values().copied().collect();
            self.lock = vote.value;
            ctx.multicast_except(TwoDeltaMsg::VoteBundle(bundle), self.signer.id());
            if !self.committed && ctx.now().as_micros() <= self.commit_deadline().as_micros() {
                self.committed = true;
                ctx.commit(vote.value);
            }
        }
    }
}

impl Protocol for TwoDeltaBb {
    type Msg = TwoDeltaMsg;

    fn start(&mut self, ctx: &mut dyn Context<TwoDeltaMsg>) {
        ctx.set_timer(self.ba_time(), TAG_BA_START);
        if let Some(v) = self.input {
            ctx.multicast(TwoDeltaMsg::Propose(Fig10Proposal::new(&self.signer, v)));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: TwoDeltaMsg, ctx: &mut dyn Context<TwoDeltaMsg>) {
        match msg {
            TwoDeltaMsg::Propose(prop) => {
                if from == self.broadcaster
                    && !self.voted
                    && prop.verify(self.broadcaster, &self.verifier)
                {
                    self.voted = true;
                    ctx.multicast(TwoDeltaMsg::Vote(Fig10Vote::new(&self.signer, prop.value)));
                }
            }
            TwoDeltaMsg::Vote(vote) => self.on_vote(vote, ctx),
            TwoDeltaMsg::VoteBundle(votes) => {
                // Adopt each valid vote; dedup happens in the maps. The
                // distinct-voter quorum check runs per value as usual.
                let distinct: BTreeSet<PartyId> = votes.iter().map(Fig10Vote::voter).collect();
                if distinct.len() != votes.len() {
                    return;
                }
                for vote in votes {
                    self.on_vote(vote, ctx);
                }
            }
            TwoDeltaMsg::Ba(m) => {
                self.ba.note_now(ctx.now());
                self.ba.on_message(m);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<TwoDeltaMsg>) {
        if tag == TAG_BA_START {
            let lock = self.lock;
            self.ba.invoke(lock, ctx, TwoDeltaMsg::Ba);
        } else if let Some(out) = self.ba.on_timer(tag, ctx, TwoDeltaMsg::Ba) {
            if !self.committed {
                self.committed = true;
                ctx.commit(out);
            }
            ctx.terminate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{
        FixedDelay, LinkDelay, Outcome, PartySet, ScheduleOracle, Scripted, ScriptedAction, Silent,
        Simulation, TimingModel,
    };
    use gcl_types::{LocalTime, SkewSchedule};

    const DELTA: Duration = Duration::from_micros(100);
    const BIG_DELTA: Duration = Duration::from_micros(1_000);

    fn sync_model() -> TimingModel {
        TimingModel::Synchrony {
            delta: DELTA,
            big_delta: BIG_DELTA,
        }
    }

    fn good_case(n: usize, f: usize, skewed: bool) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 60);
        let mut b = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA));
        if skewed {
            // Unsynchronized start: skews up to δ (clock sync guarantees).
            let late: Vec<(PartyId, Duration)> = (1..n as u32)
                .map(|i| {
                    (
                        PartyId::new(i),
                        Duration::from_micros(u64::from(i) % 2 * 50),
                    )
                })
                .collect();
            b = b.skew(SkewSchedule::with_late_parties(n, &late));
        }
        b.spawn_honest(|p| {
            TwoDeltaBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(7)),
            )
        })
        .run()
    }

    #[test]
    fn good_case_latency_2_delta_small() {
        for (n, f) in [(4, 1), (7, 2), (10, 3)] {
            let o = good_case(n, f, false);
            assert!(o.validity_holds(Value::new(7)), "n={n}");
            assert_eq!(
                o.first_commit_latency(),
                Some(DELTA * 2),
                "commit at 2δ, not 2Δ"
            );
            assert_eq!(o.good_case_latency(), Some(DELTA * 2));
        }
    }

    #[test]
    fn good_case_with_unsynchronized_start() {
        let o = good_case(4, 1, true);
        assert!(o.validity_holds(Value::new(7)));
        // Commits within 2δ of the broadcaster's start plus skew slack.
        assert!(o.good_case_latency().unwrap() <= DELTA * 2 + Duration::from_micros(50));
    }

    #[test]
    fn latency_tracks_delta_not_big_delta() {
        // Halve δ: latency halves; Δ stays fixed.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 61);
        let small = Duration::from_micros(50);
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: small,
                big_delta: BIG_DELTA,
            })
            .oracle(FixedDelay::new(small))
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(7)),
                )
            })
            .run();
        assert_eq!(o.good_case_latency(), Some(small * 2));
    }

    #[test]
    fn silent_broadcaster_falls_back_to_ba() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 62);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed(), "BB termination is unconditional");
        assert_eq!(o.committed_value(), Some(BOT), "agreed default");
    }

    #[test]
    fn equivocating_broadcaster_safe() {
        // Proposer sends 0 to P1, 1 to P2 and P3: neither reaches the n−f=3
        // vote quorum among honest, BA on ⊥ locks resolves it.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 63);
        let s0 = chain.signer(PartyId::new(0));
        let p0 = Fig10Proposal::new(&s0, Value::ZERO);
        let p1 = Fig10Proposal::new(&s0, Value::ONE);
        let actions = vec![
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(1),
                msg: TwoDeltaMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(2),
                msg: TwoDeltaMsg::Propose(p1),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(3),
                msg: TwoDeltaMsg::Propose(p1),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
    }

    #[test]
    fn slow_votes_commit_via_ba_with_same_value() {
        // Votes crawl at Δ (not δ): quorum lands after the 3Δ fast-path
        // window at some parties — but agreement + termination still hold
        // and the committed value is the broadcaster's (BA validity).
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 64);
        let oracle: ScheduleOracle<TwoDeltaMsg> = ScheduleOracle::new(DELTA).rule(
            gcl_sim::DelayRule::link(PartySet::Any, PartySet::Any, LinkDelay::Finite(BIG_DELTA))
                .when(|m: &TwoDeltaMsg| {
                    matches!(m, TwoDeltaMsg::Vote(_) | TwoDeltaMsg::VoteBundle(_))
                }),
        );
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: BIG_DELTA,
                big_delta: BIG_DELTA,
            })
            .oracle(oracle)
            .spawn_honest(|p| {
                TwoDeltaBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(7)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(7)));
    }

    #[test]
    #[should_panic(expected = "f < n/3")]
    fn resilience_check() {
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 1);
        let _ = TwoDeltaBb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }
}
