//! Figure 5: the `(Δ+δ)-n/3`-BB protocol — `f ≤ n/3`, unsynchronized
//! start, optimal good-case latency `Δ + δ` (Theorems 9 and 17).
//!
//! Votes carry the broadcaster-signed proposal, so any party that receives
//! votes for two values holds *proof* the broadcaster equivocated. The fast
//! path waits a `Δ` window after voting (equivocation detection), then
//! commits on an `n − f` quorum received by local time `2Δ + σ`. The
//! remarkable step-4 rule: when two conflicting `n − f` quorums exist at
//! `f = n/3`, their intersection is ≥ `n − 2f = f` parties who double-voted
//! — i.e. **all** Byzantine parties identified at once — so a `commit`
//! message from anyone outside the intersection is known-honest and can be
//! adopted.

use super::ba::{BaMsg, LockstepBa, BOT};
use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Broadcaster-signed proposal `⟨propose, v⟩_L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5Proposal {
    /// Proposed value.
    pub value: Value,
    /// Broadcaster signature over `("fig5-prop", value)`.
    pub sig: Signature,
}

impl Fig5Proposal {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig5-prop", value))
    }

    fn new(signer: &Signer, value: Value) -> Self {
        Fig5Proposal {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.sig.signer() == broadcaster
            && v.verify(broadcaster, Self::digest(self.value), &self.sig)
    }
}

/// Vote `⟨vote, ⟨propose, v⟩_L⟩_i` — embeds the signed proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5Vote {
    /// The embedded, broadcaster-signed proposal.
    pub prop: Fig5Proposal,
    /// Voter signature over `("fig5-vote", value)`.
    pub sig: Signature,
}

impl Fig5Vote {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig5-vote", value))
    }

    fn new(signer: &Signer, prop: Fig5Proposal) -> Self {
        Fig5Vote {
            prop,
            sig: signer.sign(Self::digest(prop.value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.prop.verify(broadcaster, v)
            && v.verify_embedded(Self::digest(self.prop.value), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Commit announcement `⟨commit, v⟩_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5Commit {
    /// Committed value.
    pub value: Value,
    /// Sender signature over `("fig5-commit", value)`.
    pub sig: Signature,
}

impl Fig5Commit {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig5-commit", value))
    }

    fn new(signer: &Signer, value: Value) -> Self {
        Fig5Commit {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, v: &impl Verify) -> bool {
        v.verify_embedded(Self::digest(self.value), &self.sig)
    }
}

/// Convenience for adversarial scripts: a broadcaster-signed proposal.
pub fn fig5_proposal(signer: &Signer, value: Value) -> Fig5Proposal {
    Fig5Proposal::new(signer, value)
}

/// Convenience for adversarial scripts: a signed vote embedding `prop`.
pub fn fig5_vote(signer: &Signer, prop: Fig5Proposal) -> Fig5Vote {
    Fig5Vote::new(signer, prop)
}

/// Wire messages of the `(Δ+δ)-n/3`-BB protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThirdMsg {
    /// Step 1.
    Propose(Fig5Proposal),
    /// Step 2.
    Vote(Fig5Vote),
    /// Step 3: forwarded quorum.
    VoteBundle(Vec<Fig5Vote>),
    /// Step 3: commit announcement.
    Commit(Fig5Commit),
    /// Step 4: embedded BA traffic.
    Ba(BaMsg),
}

gcl_types::wire_struct!(Fig5Proposal { value, sig });
gcl_types::wire_struct!(Fig5Vote { prop, sig });
gcl_types::wire_struct!(Fig5Commit { value, sig });

/// Wire codec: one tag byte per protocol step.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for ThirdMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                ThirdMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                ThirdMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                ThirdMsg::VoteBundle(vs) => {
                    buf.push(3);
                    vs.encode(buf);
                }
                ThirdMsg::Commit(c) => {
                    buf.push(4);
                    c.encode(buf);
                }
                ThirdMsg::Ba(m) => {
                    buf.push(5);
                    m.encode(buf);
                }
            }
        }
    }

    impl Decode for ThirdMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(ThirdMsg::Propose(Decode::decode(input)?)),
                2 => Ok(ThirdMsg::Vote(Decode::decode(input)?)),
                3 => Ok(ThirdMsg::VoteBundle(Decode::decode(input)?)),
                4 => Ok(ThirdMsg::Commit(Decode::decode(input)?)),
                5 => Ok(ThirdMsg::Ba(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "ThirdMsg",
                    tag,
                }),
            }
        }
    }
}

const TAG_VOTE_TIMER: u64 = 1;
const TAG_STEP4: u64 = 2;

/// One party of the `(Δ+δ)-n/3`-BB protocol (Figure 5).
///
/// # Examples
///
/// ```
/// use gcl_core::sync::ThirdBb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(3, 1)?; // f = n/3 exactly
/// let chain = Keychain::generate(3, 6);
/// let (delta, big_delta) = (Duration::from_micros(100), Duration::from_micros(1_000));
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Synchrony { delta, big_delta })
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         ThirdBb::new(cfg, chain.signer(p), chain.pki(), big_delta, PartyId::new(0),
///                      (p == PartyId::new(0)).then_some(Value::new(3)))
///     })
///     .run();
/// assert_eq!(outcome.good_case_latency(), Some(big_delta + delta)); // Δ + δ
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ThirdBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    broadcaster: PartyId,
    input: Option<Value>,
    lock: Value,
    voted: bool,
    vote_timer_expired: bool,
    committed: bool,
    forwarded: BTreeSet<Value>,
    /// Distinct proposal values provably signed by the broadcaster.
    proposals_seen: BTreeSet<Value>,
    votes: BTreeMap<Value, BTreeMap<PartyId, Fig5Vote>>,
    /// When each value's quorum was first completed (local clock).
    quorum_at: BTreeMap<Value, LocalTime>,
    commits_received: BTreeMap<PartyId, Value>,
    ba: LockstepBa,
}

impl ThirdBb {
    /// Creates the party-side state (internal σ := Δ).
    ///
    /// # Panics
    ///
    /// Panics if `f > n/3` or the input/broadcaster roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert!(
            3 * config.f() <= config.n(),
            "(Δ+δ)-n/3-BB requires f <= n/3"
        );
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        let verifier = verifier.into();
        let ba = LockstepBa::new(
            config,
            signer.clone(),
            Arc::clone(verifier.pki()),
            big_delta,
        );
        ThirdBb {
            config,
            signer,
            verifier,
            big_delta,
            broadcaster,
            input,
            lock: BOT,
            voted: false,
            vote_timer_expired: false,
            committed: false,
            forwarded: BTreeSet::new(),
            proposals_seen: BTreeSet::new(),
            votes: BTreeMap::new(),
            quorum_at: BTreeMap::new(),
            commits_received: BTreeMap::new(),
            ba,
        }
    }

    fn equivocation_detected(&self) -> bool {
        self.proposals_seen.len() >= 2
    }

    /// Fast-path commit deadline `2Δ + σ`, σ := Δ.
    fn commit_deadline(&self) -> Duration {
        self.big_delta * 3
    }

    /// Step-4 time `3Δ + 2σ`, σ := Δ.
    fn step4_time(&self) -> Duration {
        self.big_delta * 5
    }

    fn note_proposal(&mut self, prop: Fig5Proposal) {
        self.proposals_seen.insert(prop.value);
    }

    fn record_vote(&mut self, vote: Fig5Vote, now: LocalTime) {
        self.note_proposal(vote.prop);
        let quorum = self.config.quorum();
        let bucket = self.votes.entry(vote.prop.value).or_default();
        bucket.insert(vote.voter(), vote);
        if bucket.len() >= quorum {
            self.quorum_at.entry(vote.prop.value).or_insert(now);
        }
    }

    /// Step 3: after the vote-timer, commit on a timely untainted quorum.
    fn try_fast_commit(&mut self, ctx: &mut dyn Context<ThirdMsg>) {
        if !self.vote_timer_expired || self.equivocation_detected() {
            return;
        }
        let quorum = self.config.quorum();
        let ready: Vec<Value> = self
            .votes
            .iter()
            .filter(|(_, b)| b.len() >= quorum)
            .map(|(v, _)| *v)
            .collect();
        for v in ready {
            if self.forwarded.insert(v) {
                let bundle: Vec<Fig5Vote> = self.votes[&v].values().copied().collect();
                ctx.multicast_except(ThirdMsg::VoteBundle(bundle), self.signer.id());
            }
            let timely = self.quorum_at[&v].as_micros() <= self.commit_deadline().as_micros();
            if timely && !self.committed {
                self.committed = true;
                self.lock = v;
                ctx.commit(v);
                ctx.multicast(ThirdMsg::Commit(Fig5Commit::new(&self.signer, v)));
            }
        }
    }

    /// Step 4 at `3Δ + 2σ`: lock, Byzantine identification, BA.
    fn step4(&mut self, ctx: &mut dyn Context<ThirdMsg>) {
        let quorum = self.config.quorum();
        let quorum_values: Vec<Value> = self
            .votes
            .iter()
            .filter(|(_, b)| b.len() >= quorum)
            .map(|(v, _)| *v)
            .collect();
        match quorum_values.as_slice() {
            [v] => {
                if !self.committed {
                    self.lock = *v;
                }
            }
            [a, b, ..] => {
                // Two conflicting quorums: the intersection double-voted,
                // hence is entirely Byzantine; with f = n/3 that is *all*
                // Byzantine parties, so a commit message from outside it is
                // from an honest party.
                let set_a: BTreeSet<PartyId> = self.votes[a].keys().copied().collect();
                let set_b: BTreeSet<PartyId> = self.votes[b].keys().copied().collect();
                let byzantine: BTreeSet<PartyId> = set_a.intersection(&set_b).copied().collect();
                if let Some((_, v)) = self
                    .commits_received
                    .iter()
                    .find(|(p, _)| !byzantine.contains(*p))
                {
                    if !self.committed {
                        self.committed = true;
                        self.lock = *v;
                        ctx.commit(*v);
                    } else {
                        self.lock = *v;
                    }
                }
            }
            [] => {}
        }
        let lock = self.lock;
        self.ba.invoke(lock, ctx, ThirdMsg::Ba);
    }
}

impl Protocol for ThirdBb {
    type Msg = ThirdMsg;

    fn start(&mut self, ctx: &mut dyn Context<ThirdMsg>) {
        ctx.set_timer(self.step4_time(), TAG_STEP4);
        if let Some(v) = self.input {
            ctx.multicast(ThirdMsg::Propose(Fig5Proposal::new(&self.signer, v)));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: ThirdMsg, ctx: &mut dyn Context<ThirdMsg>) {
        match msg {
            ThirdMsg::Propose(prop) => {
                if !prop.verify(self.broadcaster, &self.verifier) {
                    return;
                }
                self.note_proposal(prop);
                if from == self.broadcaster && !self.voted {
                    self.voted = true;
                    ctx.multicast(ThirdMsg::Vote(Fig5Vote::new(&self.signer, prop)));
                    ctx.set_timer(self.big_delta, TAG_VOTE_TIMER);
                }
                self.try_fast_commit(ctx);
            }
            ThirdMsg::Vote(vote) => {
                if vote.verify(self.broadcaster, &self.verifier) {
                    self.record_vote(vote, ctx.now());
                    self.try_fast_commit(ctx);
                }
            }
            ThirdMsg::VoteBundle(votes) => {
                let now = ctx.now();
                for vote in votes {
                    if vote.verify(self.broadcaster, &self.verifier) {
                        self.record_vote(vote, now);
                    }
                }
                self.try_fast_commit(ctx);
            }
            ThirdMsg::Commit(c) => {
                if c.verify(&self.verifier) {
                    self.commits_received.insert(c.sig.signer(), c.value);
                }
            }
            ThirdMsg::Ba(m) => {
                self.ba.note_now(ctx.now());
                self.ba.on_message(m);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<ThirdMsg>) {
        match tag {
            TAG_VOTE_TIMER => {
                self.vote_timer_expired = true;
                self.try_fast_commit(ctx);
            }
            TAG_STEP4 => self.step4(ctx),
            _ => {
                if let Some(out) = self.ba.on_timer(tag, ctx, ThirdMsg::Ba) {
                    if !self.committed {
                        self.committed = true;
                        ctx.commit(out);
                    }
                    ctx.terminate();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Silent, Simulation, TimingModel};
    use gcl_types::SkewSchedule;

    const DELTA: Duration = Duration::from_micros(100);
    const BIG_DELTA: Duration = Duration::from_micros(1_000);

    fn sync_model() -> TimingModel {
        TimingModel::Synchrony {
            delta: DELTA,
            big_delta: BIG_DELTA,
        }
    }

    fn good_case(n: usize, f: usize, skewed: bool) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 70);
        let mut b = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA));
        if skewed {
            b = b.skew(SkewSchedule::with_late_parties(
                n,
                &[(PartyId::new(1), DELTA.halved())],
            ));
        }
        b.spawn_honest(|p| {
            ThirdBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(5)),
            )
        })
        .run()
    }

    #[test]
    fn good_case_latency_is_big_delta_plus_delta() {
        // f = n/3 exactly: n = 3f.
        for (n, f) in [(3, 1), (6, 2), (12, 4)] {
            let o = good_case(n, f, false);
            assert!(o.validity_holds(Value::new(5)), "n={n}");
            assert_eq!(
                o.good_case_latency(),
                Some(BIG_DELTA + DELTA),
                "n={n}: Δ + δ"
            );
        }
    }

    #[test]
    fn good_case_with_skew_still_fast() {
        let o = good_case(3, 1, true);
        assert!(o.validity_holds(Value::new(5)));
        // Within Δ + δ + skew slack.
        assert!(o.good_case_latency().unwrap() <= BIG_DELTA + DELTA * 2);
    }

    #[test]
    fn latency_tracks_delta_term() {
        // Doubling δ adds δ, not Δ: the δ/Δ separation at work.
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 71);
        let d2 = DELTA * 2;
        let o = Simulation::build(cfg)
            .timing(TimingModel::Synchrony {
                delta: d2,
                big_delta: BIG_DELTA,
            })
            .oracle(FixedDelay::new(d2))
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert_eq!(o.good_case_latency(), Some(BIG_DELTA + d2));
    }

    #[test]
    fn silent_broadcaster_ba_fallback() {
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 72);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(BOT));
    }

    #[test]
    fn equivocating_broadcaster_no_fast_commit_still_agrees() {
        // Broadcaster signs 0 and 1, sends 0 to P1, 1 to P2 (n = 3, f = 1).
        // Votes cross within the Δ window → both detect equivocation → no
        // fast commit; BA resolves.
        let cfg = Config::new(3, 1).unwrap();
        let chain = Keychain::generate(3, 73);
        let s0 = chain.signer(PartyId::new(0));
        let p0 = Fig5Proposal::new(&s0, Value::ZERO);
        let p1 = Fig5Proposal::new(&s0, Value::ONE);
        let actions = vec![
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(1),
                msg: ThirdMsg::Propose(p0),
            },
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(2),
                msg: ThirdMsg::Propose(p1),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        // Nobody fast-committed: equivocation was detected in the window.
        for c in o.honest_commits() {
            assert!(c.local.as_micros() > (BIG_DELTA * 5).as_micros());
        }
    }

    #[test]
    fn double_voting_identified_in_step4() {
        // n = 6, f = 2: Byzantine broadcaster equivocates; two Byzantine
        // voters double-vote to complete two quorums of n−f = 4.
        // Step 4's intersection rule must keep agreement intact.
        let cfg = Config::new(6, 2).unwrap();
        let chain = Keychain::generate(6, 74);
        let s0 = chain.signer(PartyId::new(0));
        let s5 = chain.signer(PartyId::new(5));
        let p0 = Fig5Proposal::new(&s0, Value::ZERO);
        let p1 = Fig5Proposal::new(&s0, Value::ONE);
        // Broadcaster: 0 to P1,P2; 1 to P3,P4. P5 (Byz) votes for both.
        let bcast_script = vec![
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(1),
                msg: ThirdMsg::Propose(p0),
            },
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(2),
                msg: ThirdMsg::Propose(p0),
            },
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(3),
                msg: ThirdMsg::Propose(p1),
            },
            ScriptedAction {
                at: gcl_types::LocalTime::ZERO,
                to: PartyId::new(4),
                msg: ThirdMsg::Propose(p1),
            },
        ];
        // P5 and P0 double-vote both values to everyone.
        let mut dv = Vec::new();
        for target in 1..=4u32 {
            for (signer, prop) in [(&s5, p0), (&s5, p1), (&s0, p0), (&s0, p1)] {
                dv.push(ScriptedAction {
                    at: gcl_types::LocalTime::from_micros(10),
                    to: PartyId::new(target),
                    msg: ThirdMsg::Vote(Fig5Vote::new(signer, prop)),
                });
            }
        }
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(bcast_script))
            .byzantine(PartyId::new(5), Scripted::new(dv))
            .spawn_honest(|p| {
                ThirdBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
    }

    #[test]
    #[should_panic(expected = "f <= n/3")]
    fn resilience_check() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 1);
        let _ = ThirdBb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }
}
