//! Figure 6: the `(Δ+δ)`-BB protocol — `n/3 < f < n/2`, **synchronized
//! start**, optimal good-case latency `Δ + δ` (Theorems 9 and 18).
//!
//! With a dishonest third, `n − f` quorums are unreachable; commits rest on
//! `f + 1` votes instead, made safe by *timed* votes: each vote carries the
//! local time `d` at which the voter received the proposal, commits require
//! all `f + 1` votes to have `d ≤ t` together with silence (no detected
//! equivocation) up to `t + Δ`, and locks are ranked by `t` — a smaller `t`
//! outranks. Synchronized clocks make the `d` values comparable across
//! parties; drop that assumption and the bound degrades to `Δ + 1.5δ`
//! ([`super::UnsyncBb`]).

use super::ba::{BaMsg, LockstepBa, BOT};
use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Broadcaster-signed proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6Proposal {
    /// Proposed value.
    pub value: Value,
    /// Broadcaster signature over `("fig6-prop", value)`.
    pub sig: Signature,
}

impl Fig6Proposal {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig6-prop", value))
    }

    fn new(signer: &Signer, value: Value) -> Self {
        Fig6Proposal {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.sig.signer() == broadcaster
            && v.verify(broadcaster, Self::digest(self.value), &self.sig)
    }
}

/// Timed vote `⟨vote, d, ⟨propose, v⟩_L⟩_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6Vote {
    /// Local time at which the voter received the proposal.
    pub d: Duration,
    /// The embedded signed proposal.
    pub prop: Fig6Proposal,
    /// Voter signature over `("fig6-vote", d, value)`.
    pub sig: Signature,
}

impl Fig6Vote {
    fn digest(d: Duration, value: Value) -> Digest {
        Digest::of(&("fig6-vote", d, value))
    }

    fn new(signer: &Signer, d: Duration, prop: Fig6Proposal) -> Self {
        Fig6Vote {
            d,
            prop,
            sig: signer.sign(Self::digest(d, prop.value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.prop.verify(broadcaster, v)
            && v.verify_embedded(Self::digest(self.d, self.prop.value), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Wire messages of the synchronized-start `(Δ+δ)`-BB protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncStartMsg {
    /// Step 1.
    Propose(Fig6Proposal),
    /// Step 2.
    Vote(Fig6Vote),
    /// Step 3: forwarded `f + 1` votes backing a commit.
    VoteBundle(Vec<Fig6Vote>),
    /// Step 4: embedded BA traffic.
    Ba(BaMsg),
}

gcl_types::wire_struct!(Fig6Proposal { value, sig });
gcl_types::wire_struct!(Fig6Vote { d, prop, sig });

/// Wire codec: one tag byte per protocol step.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for SyncStartMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                SyncStartMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                SyncStartMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                SyncStartMsg::VoteBundle(vs) => {
                    buf.push(3);
                    vs.encode(buf);
                }
                SyncStartMsg::Ba(m) => {
                    buf.push(4);
                    m.encode(buf);
                }
            }
        }
    }

    impl Decode for SyncStartMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(SyncStartMsg::Propose(Decode::decode(input)?)),
                2 => Ok(SyncStartMsg::Vote(Decode::decode(input)?)),
                3 => Ok(SyncStartMsg::VoteBundle(Decode::decode(input)?)),
                4 => Ok(SyncStartMsg::Ba(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "SyncStartMsg",
                    tag,
                }),
            }
        }
    }
}

const TAG_BA_START: u64 = 1;
const TAG_CHECK_BASE: u64 = 100;

/// One party of the Figure 6 protocol.
///
/// # Examples
///
/// ```
/// use gcl_core::sync::SyncStartBb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(5, 2)?; // n/3 < f < n/2
/// let chain = Keychain::generate(5, 7);
/// let (delta, big_delta) = (Duration::from_micros(100), Duration::from_micros(1_000));
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Synchrony { delta, big_delta })
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         SyncStartBb::new(cfg, chain.signer(p), chain.pki(), big_delta, PartyId::new(0),
///                          (p == PartyId::new(0)).then_some(Value::new(3)))
///     })
///     .run();
/// assert_eq!(outcome.good_case_latency(), Some(big_delta + delta)); // Δ + δ
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct SyncStartBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    broadcaster: PartyId,
    input: Option<Value>,
    lock: Value,
    /// Current lock rank (smaller = stronger); sentinel Δ+1 initially.
    rank: Duration,
    voted: bool,
    committed: bool,
    proposals_seen: BTreeSet<Value>,
    /// First local time at which equivocation became detectable.
    equivocation_at: Option<LocalTime>,
    votes: BTreeMap<Value, BTreeMap<PartyId, Fig6Vote>>,
    /// Scheduled commit checks: tag index → (value, t).
    pending: Vec<(Value, Duration)>,
    forwarded: BTreeSet<Value>,
    ba: LockstepBa,
}

impl SyncStartBb {
    /// Creates the party-side state.
    ///
    /// # Panics
    ///
    /// Panics if `f ≥ n/2` or the input/broadcaster roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert!(2 * config.f() < config.n(), "(Δ+δ)-BB requires f < n/2");
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        let verifier = verifier.into();
        let ba = LockstepBa::new(
            config,
            signer.clone(),
            Arc::clone(verifier.pki()),
            big_delta,
        );
        SyncStartBb {
            config,
            signer,
            verifier,
            big_delta,
            broadcaster,
            input,
            lock: BOT,
            rank: big_delta + Duration::from_micros(1),
            voted: false,
            committed: false,
            proposals_seen: BTreeSet::new(),
            equivocation_at: None,
            votes: BTreeMap::new(),
            pending: Vec::new(),
            forwarded: BTreeSet::new(),
            ba,
        }
    }

    fn note_proposal(&mut self, value: Value, now: LocalTime) {
        self.proposals_seen.insert(value);
        if self.proposals_seen.len() >= 2 && self.equivocation_at.is_none() {
            self.equivocation_at = Some(now);
        }
    }

    /// "No equivocation within time `deadline`".
    fn quiet_until(&self, deadline: LocalTime) -> bool {
        self.equivocation_at.is_none_or(|e| e > deadline)
    }

    /// `t` = the (f+1)-th smallest vote timestamp for `value`, if ≥ f+1
    /// votes exist.
    fn witness_t(&self, value: Value) -> Option<Duration> {
        let bucket = self.votes.get(&value)?;
        let need = self.config.honest_witness();
        if bucket.len() < need {
            return None;
        }
        let mut ds: Vec<Duration> = bucket.values().map(|v| v.d).collect();
        ds.sort_unstable();
        Some(ds[need - 1])
    }

    fn commit_now(&mut self, value: Value, ctx: &mut dyn Context<SyncStartMsg>) {
        if self.committed {
            return;
        }
        self.committed = true;
        if self.forwarded.insert(value) {
            let need = self.config.honest_witness();
            let mut votes: Vec<Fig6Vote> = self.votes[&value].values().copied().collect();
            votes.sort_unstable_by_key(|v| v.d);
            votes.truncate(need);
            ctx.multicast_except(SyncStartMsg::VoteBundle(votes), self.signer.id());
        }
        ctx.commit(value);
    }

    fn on_new_votes(&mut self, value: Value, ctx: &mut dyn Context<SyncStartMsg>) {
        let Some(t) = self.witness_t(value) else {
            return;
        };
        let now = ctx.now();
        if t > self.big_delta {
            return; // votes must attest d ≤ Δ collectively
        }
        // Lock rule: within 2Δ + t, with strictly better rank.
        if now.as_micros() <= (self.big_delta * 2 + t).as_micros() && t < self.rank {
            self.lock = value;
            self.rank = t;
        }
        // Commit rule: quiet until t + Δ, checked now or at t + Δ.
        let deadline = LocalTime::from_micros((t + self.big_delta).as_micros());
        if self.committed {
            return;
        }
        if now >= deadline {
            if self.quiet_until(deadline) {
                self.commit_now(value, ctx);
            }
        } else {
            let idx = self.pending.len() as u64;
            self.pending.push((value, t));
            ctx.set_timer(deadline.since(now), TAG_CHECK_BASE + idx);
        }
    }
}

impl Protocol for SyncStartBb {
    type Msg = SyncStartMsg;

    fn start(&mut self, ctx: &mut dyn Context<SyncStartMsg>) {
        ctx.set_timer(self.big_delta * 4, TAG_BA_START);
        if let Some(v) = self.input {
            ctx.multicast(SyncStartMsg::Propose(Fig6Proposal::new(&self.signer, v)));
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: SyncStartMsg,
        ctx: &mut dyn Context<SyncStartMsg>,
    ) {
        match msg {
            SyncStartMsg::Propose(prop) => {
                if !prop.verify(self.broadcaster, &self.verifier) {
                    return;
                }
                let now = ctx.now();
                self.note_proposal(prop.value, now);
                if from == self.broadcaster
                    && !self.voted
                    && now.as_micros() <= self.big_delta.as_micros()
                {
                    self.voted = true;
                    let d = Duration::from_micros(now.as_micros());
                    ctx.multicast(SyncStartMsg::Vote(Fig6Vote::new(&self.signer, d, prop)));
                }
            }
            SyncStartMsg::Vote(vote) => {
                if vote.verify(self.broadcaster, &self.verifier) && vote.d <= self.big_delta {
                    self.note_proposal(vote.prop.value, ctx.now());
                    self.votes
                        .entry(vote.prop.value)
                        .or_default()
                        .insert(vote.voter(), vote);
                    self.on_new_votes(vote.prop.value, ctx);
                }
            }
            SyncStartMsg::VoteBundle(votes) => {
                let mut touched = BTreeSet::new();
                for vote in votes {
                    if vote.verify(self.broadcaster, &self.verifier) && vote.d <= self.big_delta {
                        self.note_proposal(vote.prop.value, ctx.now());
                        self.votes
                            .entry(vote.prop.value)
                            .or_default()
                            .insert(vote.voter(), vote);
                        touched.insert(vote.prop.value);
                    }
                }
                for value in touched {
                    self.on_new_votes(value, ctx);
                }
            }
            SyncStartMsg::Ba(m) => {
                self.ba.note_now(ctx.now());
                self.ba.on_message(m);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<SyncStartMsg>) {
        if tag == TAG_BA_START {
            let lock = self.lock;
            self.ba.invoke(lock, ctx, SyncStartMsg::Ba);
        } else if tag >= LockstepBa::TAG_BASE {
            if let Some(out) = self.ba.on_timer(tag, ctx, SyncStartMsg::Ba) {
                if !self.committed {
                    self.committed = true;
                    ctx.commit(out);
                }
                ctx.terminate();
            }
        } else if tag >= TAG_CHECK_BASE {
            let idx = (tag - TAG_CHECK_BASE) as usize;
            if let Some(&(value, t)) = self.pending.get(idx) {
                let deadline = LocalTime::from_micros((t + self.big_delta).as_micros());
                if !self.committed
                    && self.quiet_until(deadline)
                    && self.witness_t(value).is_some_and(|w| w <= t)
                {
                    self.commit_now(value, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Silent, Simulation, TimingModel};
    use gcl_types::LocalTime;

    const DELTA: Duration = Duration::from_micros(100);
    const BIG_DELTA: Duration = Duration::from_micros(1_000);

    fn sync_model() -> TimingModel {
        TimingModel::Synchrony {
            delta: DELTA,
            big_delta: BIG_DELTA,
        }
    }

    fn good_case(n: usize, f: usize) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 80);
        Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run()
    }

    #[test]
    fn good_case_latency_delta_plus_delta() {
        // n/3 < f < n/2: the band this protocol exists for.
        for (n, f) in [(5, 2), (7, 3), (9, 4)] {
            let o = good_case(n, f);
            assert!(o.validity_holds(Value::new(5)), "n={n} f={f}");
            assert_eq!(
                o.good_case_latency(),
                Some(BIG_DELTA + DELTA),
                "n={n} f={f}: Δ + δ with synchronized start"
            );
        }
    }

    #[test]
    fn silent_broadcaster_ba_fallback() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 81);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(BOT));
    }

    #[test]
    fn equivocation_blocks_fast_commit() {
        // Byzantine broadcaster splits 0/1 between two honest halves; the
        // crossing votes (carrying embedded proposals) reveal equivocation
        // within every t + Δ window, so nobody fast-commits, and BA decides.
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 82);
        let s0 = chain.signer(PartyId::new(0));
        let p0 = Fig6Proposal::new(&s0, Value::ZERO);
        let p1 = Fig6Proposal::new(&s0, Value::ONE);
        let actions = vec![
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(1),
                msg: SyncStartMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(2),
                msg: SyncStartMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(3),
                msg: SyncStartMsg::Propose(p1),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(4),
                msg: SyncStartMsg::Propose(p1),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        for c in o.honest_commits() {
            assert!(
                c.local.as_micros() >= (BIG_DELTA * 4).as_micros(),
                "commit only via BA"
            );
        }
    }

    #[test]
    fn double_voting_cannot_fake_rank() {
        // f = 2 Byzantine double-voters forge low-d votes for value 9, but
        // only 2 of them exist (< f+1 = 3), so no commit and no lock beats
        // the honest one.
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 83);
        let s0 = chain.signer(PartyId::new(0));
        let p9 = Fig6Proposal::new(&s0, Value::new(9));
        let p5 = Fig6Proposal::new(&s0, Value::new(5));
        let mut fake = Vec::new();
        for (signer_id, to) in [(0u32, 1u32), (0, 2), (4, 1), (4, 2)] {
            fake.push(ScriptedAction {
                at: LocalTime::from_micros(1),
                to: PartyId::new(to),
                msg: SyncStartMsg::Vote(Fig6Vote::new(
                    &chain.signer(PartyId::new(signer_id)),
                    Duration::ZERO,
                    p9,
                )),
            });
        }
        // Broadcaster also behaves honestly toward everyone with value 5.
        let mut honest_props = Vec::new();
        for to in 1..=4u32 {
            honest_props.push(ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(to),
                msg: SyncStartMsg::Propose(p5),
            });
        }
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(
                PartyId::new(0),
                Scripted::new([honest_props, fake.clone()].concat()),
            )
            .byzantine(PartyId::new(4), Scripted::new(vec![]))
            .spawn_honest(|p| {
                SyncStartBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        // The committed value is never the forged 9: equivocation (5 vs 9
        // both signed by broadcaster) suppresses fast commits of 9, and
        // only 2 < f+1 votes exist for it anyway.
        if let Some(v) = o.committed_value() {
            assert_ne!(v, Value::new(9));
        }
    }

    #[test]
    fn vote_with_large_d_rejected() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 84);
        let s0 = chain.signer(PartyId::new(0));
        let prop = Fig6Proposal::new(&s0, Value::new(5));
        let vote = Fig6Vote::new(
            &chain.signer(PartyId::new(1)),
            BIG_DELTA + Duration::from_micros(1),
            prop,
        );
        assert!(
            vote.verify(PartyId::new(0), &chain.pki()),
            "sig itself fine"
        );
        // Protocol-level rejection is exercised in the protocol: a d > Δ
        // never counts toward witness_t.
        let mut bb = SyncStartBb::new(
            cfg,
            chain.signer(PartyId::new(2)),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            None,
        );
        bb.votes
            .entry(Value::new(5))
            .or_default()
            .insert(vote.voter(), vote);
        assert_eq!(bb.witness_t(Value::new(5)), None, "below f+1 anyway");
    }

    #[test]
    #[should_panic(expected = "f < n/2")]
    fn resilience_check() {
        let cfg = Config::new(4, 2).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = SyncStartBb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            BIG_DELTA,
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }
}
