//! Figure 9: the `(Δ+1.5δ)`-BB protocol — `n/3 < f < n/2`,
//! **unsynchronized start**, optimal good-case latency `Δ + 1.5δ`
//! (Theorems 10 and 11).
//!
//! The paper's most surprising protocol: the tight bound is *not an integer
//! multiple of the message delay*. Parties "early-vote" with a parameter
//! `d` that guesses δ — a vote with parameter `d` is sent `Δ − 0.5d` after
//! the proposal arrived, and a commit on `f + 1` matching `(d, v)` votes
//! additionally requires quiet (no equivocation) until `t_prop + Δ + 0.5d`
//! and a direct copy of the proposal from the broadcaster. Certificates are
//! ranked by `d` (smaller wins), which breaks the tie that would otherwise
//! make early voting unsafe (Lemma 1).
//!
//! The pure protocol votes for *every* `d ∈ [0, Δ]` (unbounded messages —
//! the paper's own footnote). As the paper prescribes under "Tradeoff
//! between communication complexity and good-case latency", we discretize
//! to `m + 1` grid values `d_k = kΔ/m`, giving good-case latency
//! `(1 + 1/2m)Δ + 1.5δ` with `O(mn²)` messages; the Figure 8 bench sweeps
//! `m`.

use super::ba::{BaMsg, LockstepBa, BOT};
use gcl_crypto::{Digest, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Broadcaster-signed proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig9Proposal {
    /// Proposed value.
    pub value: Value,
    /// Broadcaster signature over `("fig9-prop", value)`.
    pub sig: Signature,
}

impl Fig9Proposal {
    fn digest(value: Value) -> Digest {
        Digest::of(&("fig9-prop", value))
    }

    /// Signs a proposal as the broadcaster.
    pub fn new(signer: &Signer, value: Value) -> Self {
        Fig9Proposal {
            value,
            sig: signer.sign(Self::digest(value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.sig.signer() == broadcaster
            && v.verify(broadcaster, Self::digest(self.value), &self.sig)
    }
}

/// Early vote `⟨vote, d, ⟨propose, v⟩_L⟩_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig9Vote {
    /// The δ-guess parameter.
    pub d: Duration,
    /// The embedded signed proposal.
    pub prop: Fig9Proposal,
    /// Voter signature over `("fig9-vote", d, value)`.
    pub sig: Signature,
}

impl Fig9Vote {
    fn digest(d: Duration, value: Value) -> Digest {
        Digest::of(&("fig9-vote", d, value))
    }

    fn new(signer: &Signer, d: Duration, prop: Fig9Proposal) -> Self {
        Fig9Vote {
            d,
            prop,
            sig: signer.sign(Self::digest(d, prop.value)),
        }
    }

    fn verify(&self, broadcaster: PartyId, v: &impl Verify) -> bool {
        self.prop.verify(broadcaster, v)
            && v.verify_embedded(Self::digest(self.d, self.prop.value), &self.sig)
    }

    /// The voter.
    pub fn voter(&self) -> PartyId {
        self.sig.signer()
    }
}

/// Wire messages of the `(Δ+1.5δ)`-BB protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsyncMsg {
    /// Step 1–2: original or forwarded proposal.
    Propose(Fig9Proposal),
    /// Step 3.
    Vote(Fig9Vote),
    /// Step 4: forwarded `f + 1` votes of one `(d, v)`.
    VoteBundle(Vec<Fig9Vote>),
    /// Step 5: embedded BA traffic.
    Ba(BaMsg),
}

gcl_types::wire_struct!(Fig9Proposal { value, sig });
gcl_types::wire_struct!(Fig9Vote { d, prop, sig });

/// Wire codec: one tag byte per protocol step.
mod wire_codec {
    use super::*;
    use gcl_types::{Decode, Encode, WireError};

    impl Encode for UnsyncMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                UnsyncMsg::Propose(p) => {
                    buf.push(1);
                    p.encode(buf);
                }
                UnsyncMsg::Vote(v) => {
                    buf.push(2);
                    v.encode(buf);
                }
                UnsyncMsg::VoteBundle(vs) => {
                    buf.push(3);
                    vs.encode(buf);
                }
                UnsyncMsg::Ba(m) => {
                    buf.push(4);
                    m.encode(buf);
                }
            }
        }
    }

    impl Decode for UnsyncMsg {
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            match u8::decode(input)? {
                1 => Ok(UnsyncMsg::Propose(Decode::decode(input)?)),
                2 => Ok(UnsyncMsg::Vote(Decode::decode(input)?)),
                3 => Ok(UnsyncMsg::VoteBundle(Decode::decode(input)?)),
                4 => Ok(UnsyncMsg::Ba(Decode::decode(input)?)),
                tag => Err(WireError::BadTag {
                    ty: "UnsyncMsg",
                    tag,
                }),
            }
        }
    }
}

const TAG_BA_START: u64 = 1;
const TAG_VOTE_BASE: u64 = 100;
const TAG_CHECK_BASE: u64 = 10_000;

/// One party of the Figure 9 protocol, with an `m`-point discretized vote
/// grid.
///
/// # Examples
///
/// With δ on the grid (here m = 10, δ = Δ/10), the good case commits at
/// exactly `Δ + 1.5δ`:
///
/// ```
/// use gcl_core::sync::UnsyncBb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, SkewSchedule, Value};
///
/// let cfg = Config::new(5, 2)?;
/// let chain = Keychain::generate(5, 8);
/// let (delta, big_delta) = (Duration::from_micros(100), Duration::from_micros(1_000));
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::Synchrony { delta, big_delta })
///     .oracle(FixedDelay::new(delta))
///     .skew(SkewSchedule::with_late_parties(5, &[(PartyId::new(1), Duration::from_micros(50))]))
///     .spawn_honest(|p| {
///         UnsyncBb::new(cfg, chain.signer(p), chain.pki(), big_delta, 10, PartyId::new(0),
///                       (p == PartyId::new(0)).then_some(Value::new(3)))
///     })
///     .run();
/// // Δ + 1.5δ = 1000 + 150, plus the laggard's 50µs start offset at most.
/// assert!(outcome.good_case_latency().unwrap()
///         <= Duration::from_micros(1_150 + 50));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct UnsyncBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    grid: Vec<Duration>,
    broadcaster: PartyId,
    input: Option<Value>,
    lock: Value,
    rank: Duration,
    direct_rcv: bool,
    t_prop: Option<LocalTime>,
    prop: Option<Fig9Proposal>,
    proposals_seen: BTreeSet<Value>,
    equivocation_at: Option<LocalTime>,
    committed: bool,
    votes: BTreeMap<(Duration, Value), BTreeMap<PartyId, Fig9Vote>>,
    /// First completion time of each `(d, v)` quorum.
    quorum_at: BTreeMap<(Duration, Value), LocalTime>,
    forwarded: BTreeSet<(Duration, Value)>,
    /// Scheduled commit checks: index → (d, value).
    pending: Vec<(Duration, Value)>,
    ba: LockstepBa,
}

impl UnsyncBb {
    /// Creates the party-side state with an `m`-point grid (σ := Δ
    /// internally, as the paper prescribes).
    ///
    /// # Panics
    ///
    /// Panics if `f ≥ n/2`, `m == 0`, or the input/roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        m: u64,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert!(2 * config.f() < config.n(), "(Δ+1.5δ)-BB requires f < n/2");
        assert!(m >= 1, "grid needs at least one step");
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        let grid: Vec<Duration> = (0..=m).map(|k| big_delta * k / m).collect();
        let verifier = verifier.into();
        let ba = LockstepBa::new(
            config,
            signer.clone(),
            Arc::clone(verifier.pki()),
            big_delta,
        );
        UnsyncBb {
            config,
            signer,
            verifier,
            big_delta,
            grid,
            broadcaster,
            input,
            lock: BOT,
            rank: big_delta + Duration::from_micros(1),
            direct_rcv: false,
            t_prop: None,
            prop: None,
            proposals_seen: BTreeSet::new(),
            equivocation_at: None,
            committed: false,
            votes: BTreeMap::new(),
            quorum_at: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            pending: Vec::new(),
            ba,
        }
    }

    /// BA invocation time `6.5Δ + 2σ` with σ := Δ → `8.5Δ`.
    fn ba_time(&self) -> Duration {
        self.big_delta * 17 / 2
    }

    fn note_proposal(&mut self, value: Value, now: LocalTime) {
        self.proposals_seen.insert(value);
        if self.proposals_seen.len() >= 2 && self.equivocation_at.is_none() {
            self.equivocation_at = Some(now);
        }
    }

    fn quiet_until(&self, deadline: LocalTime) -> bool {
        self.equivocation_at.is_none_or(|e| e > deadline)
    }

    /// Step 2: first valid proposal — forward, set `direct-rcv`, arm the
    /// per-`d` vote timers.
    fn adopt_proposal(
        &mut self,
        from: PartyId,
        prop: Fig9Proposal,
        ctx: &mut dyn Context<UnsyncMsg>,
    ) {
        self.note_proposal(prop.value, ctx.now());
        if self.t_prop.is_some() {
            return;
        }
        let now = ctx.now();
        self.t_prop = Some(now);
        self.prop = Some(prop);
        ctx.multicast_except(UnsyncMsg::Propose(prop), self.signer.id());
        // direct-rcv: straight from the broadcaster, within Δ + σ = 2Δ.
        if from == self.broadcaster && now.as_micros() <= (self.big_delta * 2).as_micros() {
            self.direct_rcv = true;
        }
        for (k, d) in self.grid.clone().into_iter().enumerate() {
            let wait = self.big_delta - d.halved(); // Δ − 0.5d
            ctx.set_timer(wait, TAG_VOTE_BASE + k as u64);
        }
    }

    fn on_new_quorum(&mut self, key: (Duration, Value), ctx: &mut dyn Context<UnsyncMsg>) {
        let (d, value) = key;
        let Some(t_prop) = self.t_prop else { return };
        let now = ctx.now();
        let t_votes = self.quorum_at[&key];
        if self.forwarded.insert(key) {
            let bundle: Vec<Fig9Vote> = self.votes[&key].values().copied().collect();
            ctx.multicast_except(UnsyncMsg::VoteBundle(bundle), self.signer.id());
        }
        // Step 4b: lock if t_votes − t_prop ≤ 4.5Δ and rank improves.
        if t_votes.since(t_prop).as_micros() <= (self.big_delta * 9 / 2).as_micros()
            && d < self.rank
        {
            self.lock = value;
            self.rank = d;
        }
        // Step 4a: commit path.
        if self.committed
            || !self.direct_rcv
            || t_votes.since(t_prop).as_micros() > (self.big_delta + d + d.halved()).as_micros()
        {
            return; // Δ + 1.5d window missed (or already committed)
        }
        let deadline = t_prop + (self.big_delta + d.halved()); // t_prop + Δ + 0.5d
        if now >= deadline {
            if self.quiet_until(deadline) {
                self.committed = true;
                ctx.commit(value);
            }
        } else {
            let idx = self.pending.len() as u64;
            self.pending.push(key);
            ctx.set_timer(deadline.since(now), TAG_CHECK_BASE + idx);
        }
    }

    fn record_vote(&mut self, vote: Fig9Vote, ctx: &mut dyn Context<UnsyncMsg>) {
        // A vote embeds the proposal, so it doubles as a forwarded proposal.
        self.adopt_proposal(vote.voter(), vote.prop, ctx);
        self.note_proposal(vote.prop.value, ctx.now());
        let key = (vote.d, vote.prop.value);
        let bucket = self.votes.entry(key).or_default();
        bucket.insert(vote.voter(), vote);
        if bucket.len() >= self.config.honest_witness() && !self.quorum_at.contains_key(&key) {
            self.quorum_at.insert(key, ctx.now());
            self.on_new_quorum(key, ctx);
        }
    }
}

impl Protocol for UnsyncBb {
    type Msg = UnsyncMsg;

    fn start(&mut self, ctx: &mut dyn Context<UnsyncMsg>) {
        ctx.set_timer(self.ba_time(), TAG_BA_START);
        if let Some(v) = self.input {
            ctx.multicast(UnsyncMsg::Propose(Fig9Proposal::new(&self.signer, v)));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: UnsyncMsg, ctx: &mut dyn Context<UnsyncMsg>) {
        match msg {
            UnsyncMsg::Propose(prop) => {
                if prop.verify(self.broadcaster, &self.verifier) {
                    self.adopt_proposal(from, prop, ctx);
                }
            }
            UnsyncMsg::Vote(vote) => {
                if vote.verify(self.broadcaster, &self.verifier) && vote.d <= self.big_delta {
                    self.record_vote(vote, ctx);
                }
            }
            UnsyncMsg::VoteBundle(votes) => {
                for vote in votes {
                    if vote.verify(self.broadcaster, &self.verifier) && vote.d <= self.big_delta {
                        self.record_vote(vote, ctx);
                    }
                }
            }
            UnsyncMsg::Ba(m) => {
                self.ba.note_now(ctx.now());
                self.ba.on_message(m);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<UnsyncMsg>) {
        if tag == TAG_BA_START {
            let lock = self.lock;
            self.ba.invoke(lock, ctx, UnsyncMsg::Ba);
        } else if tag >= LockstepBa::TAG_BASE {
            if let Some(out) = self.ba.on_timer(tag, ctx, UnsyncMsg::Ba) {
                if !self.committed {
                    self.committed = true;
                    ctx.commit(out);
                }
                ctx.terminate();
            }
        } else if tag >= TAG_CHECK_BASE {
            // Deferred commit check at t_prop + Δ + 0.5d.
            let idx = (tag - TAG_CHECK_BASE) as usize;
            let Some(&(d, value)) = self.pending.get(idx) else {
                return;
            };
            let Some(t_prop) = self.t_prop else { return };
            let deadline = t_prop + (self.big_delta + d.halved());
            if !self.committed && self.direct_rcv && self.quiet_until(deadline) {
                self.committed = true;
                ctx.commit(value);
            }
        } else if tag >= TAG_VOTE_BASE {
            // Step 3: early vote with grid parameter d_k.
            let k = (tag - TAG_VOTE_BASE) as usize;
            let (Some(prop), Some(d)) = (self.prop, self.grid.get(k).copied()) else {
                return;
            };
            if self.equivocation_at.is_none() {
                let vote = Fig9Vote::new(&self.signer, d, prop);
                // Votes count as messages "containing different values
                // signed by the broadcaster" for receivers, and our own
                // vote reaches us immediately via multicast.
                ctx.multicast(UnsyncMsg::Vote(vote));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Silent, Simulation, TimingModel};
    use gcl_types::SkewSchedule;

    const DELTA: Duration = Duration::from_micros(100);
    const BIG_DELTA: Duration = Duration::from_micros(1_000);
    const M: u64 = 10; // δ = Δ/10 sits exactly on the grid

    fn sync_model() -> TimingModel {
        TimingModel::Synchrony {
            delta: DELTA,
            big_delta: BIG_DELTA,
        }
    }

    fn good_case(n: usize, f: usize, skew: Option<SkewSchedule>) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 90);
        let mut b = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA));
        if let Some(s) = skew {
            b = b.skew(s);
        }
        b.spawn_honest(|p| {
            UnsyncBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                BIG_DELTA,
                M,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(5)),
            )
        })
        .run()
    }

    #[test]
    fn good_case_latency_delta_plus_1_5_delta() {
        // δ on the grid ⇒ exactly Δ + 1.5δ with synchronized start.
        for (n, f) in [(5, 2), (7, 3)] {
            let o = good_case(n, f, None);
            assert!(o.validity_holds(Value::new(5)), "n={n} f={f}");
            assert_eq!(
                o.good_case_latency(),
                Some(BIG_DELTA + DELTA + DELTA.halved()),
                "n={n} f={f}: Δ + 1.5δ"
            );
        }
    }

    #[test]
    fn good_case_with_clock_skew() {
        // Unsynchronized start with skew 0.5δ (the model's lower bound on
        // achievable skew): still ≈ Δ + 1.5δ from the broadcaster's start.
        let skew = SkewSchedule::with_late_parties(
            5,
            &[
                (PartyId::new(1), DELTA.halved()),
                (PartyId::new(3), DELTA.halved()),
            ],
        );
        let o = good_case(5, 2, Some(skew));
        assert!(o.validity_holds(Value::new(5)));
        let bound = BIG_DELTA + DELTA + DELTA.halved() + DELTA.halved();
        assert!(
            o.good_case_latency().unwrap() <= bound,
            "latency {} exceeds Δ + 1.5δ + σ",
            o.good_case_latency().unwrap()
        );
    }

    #[test]
    fn coarser_grid_adds_half_step() {
        // m = 1: grid {0, Δ}; δ rounds up to d = Δ, so the commit waits
        // until t_prop + Δ + 0.5Δ — latency (1 + 1/2m)Δ + ... per paper.
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 91);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    1,
                    PartyId::new(0),
                    (p == PartyId::new(0)).then_some(Value::new(5)),
                )
            })
            .run();
        assert!(o.validity_holds(Value::new(5)));
        // d = Δ: committed at δ + Δ + 0.5Δ = 1600µs.
        assert_eq!(
            o.good_case_latency(),
            Some(DELTA + BIG_DELTA + BIG_DELTA.halved())
        );
    }

    #[test]
    fn finer_grid_converges_to_optimum() {
        // Latency is non-increasing in m and approaches Δ + 1.5δ.
        let mut last = Duration::from_micros(u64::MAX);
        for m in [1, 2, 5, 10] {
            let cfg = Config::new(5, 2).unwrap();
            let chain = Keychain::generate(5, 92);
            let o = Simulation::build(cfg)
                .timing(sync_model())
                .oracle(FixedDelay::new(DELTA))
                .spawn_honest(|p| {
                    UnsyncBb::new(
                        cfg,
                        chain.signer(p),
                        chain.pki(),
                        BIG_DELTA,
                        m,
                        PartyId::new(0),
                        (p == PartyId::new(0)).then_some(Value::new(5)),
                    )
                })
                .run();
            let lat = o.good_case_latency().unwrap();
            assert!(lat <= last, "m={m}: {lat} > previous {last}");
            last = lat;
        }
        assert_eq!(last, BIG_DELTA + DELTA + DELTA.halved());
    }

    #[test]
    fn silent_broadcaster_ba_fallback() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 93);
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    M,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(BOT));
    }

    #[test]
    fn equivocation_blocks_fast_commit_and_agreement_holds() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 94);
        let s0 = chain.signer(PartyId::new(0));
        let p0 = Fig9Proposal::new(&s0, Value::ZERO);
        let p1 = Fig9Proposal::new(&s0, Value::ONE);
        let actions = vec![
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(1),
                msg: UnsyncMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(2),
                msg: UnsyncMsg::Propose(p0),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(3),
                msg: UnsyncMsg::Propose(p1),
            },
            ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(4),
                msg: UnsyncMsg::Propose(p1),
            },
        ];
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    M,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        // Forwarded proposals cross well within every Δ − 0.5d window, so
        // no votes are cast at all and everything resolves in the BA.
        for c in o.honest_commits() {
            assert!(c.local.as_micros() >= (BIG_DELTA * 17 / 2).as_micros());
        }
    }

    #[test]
    fn no_direct_receipt_no_fast_commit() {
        // Proposal reaches P4 only via forwarding (broadcaster's direct
        // copy to P4 is dropped): P4 must not fast-commit (direct-rcv
        // gate), but everyone still agrees.
        use gcl_sim::{DelayRule, LinkDelay, PartySet, ScheduleOracle};
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 95);
        let oracle: ScheduleOracle<UnsyncMsg> = ScheduleOracle::new(DELTA).rule(DelayRule::link(
            PartySet::One(PartyId::new(0)),
            PartySet::One(PartyId::new(4)),
            LinkDelay::Never,
        ));
        // Broadcaster slot is Byzantine (it selectively omits), but runs
        // the honest protocol code.
        let o = Simulation::build(cfg)
            .timing(sync_model())
            .oracle(oracle)
            .byzantine(
                PartyId::new(0),
                UnsyncBb::new(
                    cfg,
                    chain.signer(PartyId::new(0)),
                    chain.pki(),
                    BIG_DELTA,
                    M,
                    PartyId::new(0),
                    Some(Value::new(5)),
                ),
            )
            .spawn_honest(|p| {
                UnsyncBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    BIG_DELTA,
                    M,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::new(5)));
        // P4 committed late (via lock + BA), the others fast.
        let c4 = o.commit_of(PartyId::new(4)).unwrap();
        assert!(c4.local.as_micros() >= (BIG_DELTA * 17 / 2).as_micros());
    }

    #[test]
    #[should_panic(expected = "f < n/2")]
    fn resilience_check() {
        let cfg = Config::new(4, 2).unwrap();
        let chain = Keychain::generate(4, 1);
        let _ = UnsyncBb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            BIG_DELTA,
            M,
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_grid_rejected() {
        let cfg = Config::new(5, 2).unwrap();
        let chain = Keychain::generate(5, 1);
        let _ = UnsyncBb::new(
            cfg,
            chain.signer(PartyId::new(0)),
            chain.pki(),
            BIG_DELTA,
            0,
            PartyId::new(0),
            Some(Value::ZERO),
        );
    }

    use gcl_types::LocalTime;
}
