//! The Byzantine agreement primitive used by every synchronous BB protocol.
//!
//! The paper (Section 2, "Byzantine broadcast variants") requires a BA with
//! *validity* — if all honest parties input `v`, all commit `v` — that
//! tolerates clock skew σ, implemented by "any synchronous lock-step BA
//! [...] setting each round duration [long enough] to enforce the
//! abstraction of lock-step rounds".
//!
//! We instantiate it as `n` parallel Dolev–Strong broadcasts (one per
//! party's input) followed by a plurality vote over the broadcast vector:
//!
//! * **Agreement** for any `f < n`: DS makes every honest party extract the
//!   same per-instance output vector.
//! * **Validity** for `f < n/2`: if all honest input `v`, the ≥ `n − f`
//!   honest instances output `v` and at most `f < n − f` Byzantine
//!   instances can output anything else, so `v` wins the plurality.
//!
//! [`LockstepBa`] is a *component*, not a [`gcl_sim::Protocol`]: the parent
//! protocol embeds [`BaMsg`] in its own message enum, forwards timer tags in
//! the reserved range (≥ [`LockstepBa::TAG_BASE`]), and invokes the BA at
//! the local time its figure prescribes.

use super::dolev_strong::{DsInstance, DsRelay, BOT_SENTINEL};
use gcl_crypto::{Signer, Verifier};
use gcl_sim::Context;
use gcl_types::{Config, Duration, LocalTime, PartyId, Value};
use std::collections::BTreeMap;

/// Re-export: the `⊥` value committed when agreement yields no real value.
pub use super::dolev_strong::BOT_SENTINEL as BOT;

const BA_DOMAIN: &str = "ba-ds";

/// Wire message of the BA primitive (a Dolev–Strong relay for one of the
/// `n` parallel instances).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaMsg(pub DsRelay);

gcl_types::wire_newtype!(BaMsg);

/// The lock-step Byzantine agreement component.
///
/// Lifecycle: construct with the protocol; call [`LockstepBa::invoke`] at
/// the parent's BA time with the party's input; route incoming [`BaMsg`]
/// and reserved-range timers; [`LockstepBa::on_timer`] returns
/// `Some(decision)` at the final round boundary.
#[derive(Debug)]
pub struct LockstepBa {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    start: Option<LocalTime>,
    current_round: usize,
    instances: Vec<DsInstance>,
    outbox: Vec<DsRelay>,
    decided: Option<Value>,
}

impl LockstepBa {
    /// Timer tags at or above this value belong to the BA component;
    /// parents must route them to [`LockstepBa::on_timer`].
    pub const TAG_BASE: u64 = 1_000_000;

    /// Round duration `3Δ`: absorbs skew ≤ Δ + delay ≤ Δ with margin.
    pub fn round_duration(big_delta: Duration) -> Duration {
        big_delta * 3
    }

    /// Total time from invocation to decision: `(f + 1) · 3Δ`.
    pub fn duration(config: Config, big_delta: Duration) -> Duration {
        Self::round_duration(big_delta) * (config.f() as u64 + 1)
    }

    /// Creates an idle BA component.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
    ) -> Self {
        let n = config.n();
        LockstepBa {
            config,
            signer,
            verifier: verifier.into(),
            big_delta,
            start: None,
            current_round: 1,
            instances: vec![DsInstance::default(); n],
            outbox: Vec::new(),
            decided: None,
        }
    }

    /// Whether [`invoke`](Self::invoke) has been called.
    pub fn is_invoked(&self) -> bool {
        self.start.is_some()
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<Value> {
        self.decided
    }

    /// Starts the agreement with this party's `input`, scheduling the
    /// lock-step boundaries. Call exactly once.
    ///
    /// # Panics
    ///
    /// Panics on double invocation.
    pub fn invoke<M>(&mut self, input: Value, ctx: &mut dyn Context<M>, wrap: impl Fn(BaMsg) -> M)
    where
        M: Clone,
    {
        assert!(self.start.is_none(), "BA invoked twice");
        self.start = Some(ctx.now());
        let r = Self::round_duration(self.big_delta);
        for k in 1..=(self.config.f() + 1) {
            ctx.set_timer(r * k as u64, Self::TAG_BASE + k as u64);
        }
        let relay = DsRelay::originate(BA_DOMAIN, &self.signer, input);
        self.instances[self.signer.id().as_usize()].accept(&relay, 1, self.config.f());
        let msg = wrap(BaMsg(relay));
        ctx.multicast_except(msg, self.signer.id());
    }

    fn round_of(&self, now: LocalTime) -> usize {
        let start = self.start.expect("round_of only after invoke");
        let elapsed = now.since(start);
        (elapsed.as_micros() / Self::round_duration(self.big_delta).as_micros()) as usize + 1
    }

    /// Handles an incoming relay. No-op before invocation (early messages
    /// from fast peers are tolerated by buffering them into round 1 — the
    /// 3Δ round absorbs the skew).
    pub fn on_message(&mut self, msg: BaMsg) {
        let relay = msg.0;
        if self.decided.is_some() {
            return;
        }
        // Before our own invocation we are logically in round 1.
        let round = if self.start.is_some() {
            self.round_of_now()
        } else {
            1
        };
        // Out-of-range instance ids were previously rejected by chain
        // verification (no valid signer exists); the bounds check keeps
        // that rejection while letting the sig-independent accept
        // predicate run first — most re-deliveries skip crypto entirely.
        let Some(inst) = self.instances.get(relay.instance.as_usize()) else {
            return;
        };
        if !inst.considers(&relay, round, self.config.f())
            || !relay.verify(BA_DOMAIN, &self.verifier)
        {
            return;
        }
        let inst = &mut self.instances[relay.instance.as_usize()];
        if inst.accept(&relay, round, self.config.f()) {
            self.outbox.push(relay.extend(BA_DOMAIN, &self.signer));
        }
    }

    /// Current-round bookkeeping for [`on_message`](Self::on_message):
    /// parents pass the context time via [`note_now`](Self::note_now)
    /// before dispatching, or rely on timer-driven rounds.
    fn round_of_now(&self) -> usize {
        self.current_round
    }

    /// Records the local time just before dispatching a message to
    /// [`on_message`](Self::on_message).
    pub fn note_now(&mut self, now: LocalTime) {
        if self.start.is_some() {
            self.current_round = self.round_of(now);
        }
    }

    /// Handles a reserved-range timer; returns the decision at the final
    /// boundary.
    pub fn on_timer<M>(
        &mut self,
        tag: u64,
        ctx: &mut dyn Context<M>,
        wrap: impl Fn(BaMsg) -> M,
    ) -> Option<Value>
    where
        M: Clone,
    {
        if tag < Self::TAG_BASE || self.decided.is_some() {
            return None;
        }
        let k = (tag - Self::TAG_BASE) as usize;
        self.current_round = k + 1;
        for relay in std::mem::take(&mut self.outbox) {
            ctx.multicast_except(wrap(BaMsg(relay)), self.signer.id());
        }
        if k == self.config.f() + 1 {
            let decision = self.tally();
            self.decided = Some(decision);
            return Some(decision);
        }
        None
    }

    /// Plurality over the per-instance DS outputs (⊥ outputs excluded);
    /// ties break to the smaller value; all-⊥ yields [`BOT`].
    fn tally(&self) -> Value {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for inst in &self.instances {
            let v = inst.decide();
            if v != BOT_SENTINEL {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then(vb.cmp(va)))
            .map_or(BOT_SENTINEL, |(v, _)| v)
    }
}

// `current_round` lives outside the constructor for readability.
impl LockstepBa {
    /// The party this component signs for.
    pub fn id(&self) -> PartyId {
        self.signer.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Protocol, Silent, Simulation, TimingModel};
    use gcl_types::SkewSchedule;

    const DELTA: Duration = Duration::from_micros(100);

    /// Minimal protocol hosting a bare BA for testing.
    struct BaHost {
        ba: LockstepBa,
        input: Value,
    }

    impl Protocol for BaHost {
        type Msg = BaMsg;
        fn start(&mut self, ctx: &mut dyn Context<BaMsg>) {
            let input = self.input;
            self.ba.invoke(input, ctx, |m| m);
        }
        fn on_message(&mut self, _from: PartyId, msg: BaMsg, ctx: &mut dyn Context<BaMsg>) {
            self.ba.note_now(ctx.now());
            self.ba.on_message(msg);
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<BaMsg>) {
            if let Some(v) = self.ba.on_timer(tag, ctx, |m| m) {
                ctx.commit(v);
                ctx.terminate();
            }
        }
    }

    fn run_ba(n: usize, f: usize, inputs: impl Fn(PartyId) -> Value, skewed: bool) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 50);
        let mut b = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA));
        if skewed {
            b = b.skew(SkewSchedule::with_late_parties(
                n,
                &[(PartyId::new(1), DELTA.halved()), (PartyId::new(2), DELTA)],
            ));
        }
        b.spawn_honest(|p| BaHost {
            ba: LockstepBa::new(cfg, chain.signer(p), chain.pki(), DELTA),
            input: inputs(p),
        })
        .run()
    }

    #[test]
    fn validity_unanimous_input() {
        for (n, f) in [(4, 1), (5, 2), (7, 3)] {
            let o = run_ba(n, f, |_| Value::new(6), false);
            assert!(o.validity_holds(Value::new(6)), "n={n} f={f}");
        }
    }

    #[test]
    fn agreement_with_split_inputs() {
        // Majority inputs 1, minority 0 — everyone agrees on one of them.
        let o = run_ba(5, 2, |p| Value::new(u64::from(p.index() >= 2)), false);
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(Value::ONE), "3 of 5 said 1");
    }

    #[test]
    fn tolerates_skew() {
        let o = run_ba(4, 1, |_| Value::new(9), true);
        assert!(o.validity_holds(Value::new(9)));
    }

    #[test]
    fn byzantine_silent_party_cannot_block() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 51);
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(3), Silent::new())
            .spawn_honest(|p| BaHost {
                ba: LockstepBa::new(cfg, chain.signer(p), chain.pki(), DELTA),
                input: Value::new(4),
            })
            .run();
        assert!(o.validity_holds(Value::new(4)));
    }

    #[test]
    fn all_bot_inputs_agree_on_bot() {
        let o = run_ba(4, 1, |_| BOT, false);
        o.assert_agreement();
        assert_eq!(o.committed_value(), Some(BOT));
    }

    #[test]
    fn duration_accessor() {
        let cfg = Config::new(4, 1).unwrap();
        assert_eq!(LockstepBa::duration(cfg, DELTA), Duration::from_micros(600));
    }

    #[test]
    #[should_panic(expected = "invoked twice")]
    fn double_invoke_panics() {
        struct DoubleHost {
            ba: LockstepBa,
        }
        impl Protocol for DoubleHost {
            type Msg = BaMsg;
            fn start(&mut self, ctx: &mut dyn Context<BaMsg>) {
                self.ba.invoke(Value::ZERO, ctx, |m| m);
                self.ba.invoke(Value::ZERO, ctx, |m| m);
            }
            fn on_message(&mut self, _: PartyId, _: BaMsg, _: &mut dyn Context<BaMsg>) {}
        }
        let cfg = Config::new(2, 1).unwrap();
        let chain = Keychain::generate(2, 52);
        let _ = Simulation::build(cfg)
            .spawn_honest(|p| DoubleHost {
                ba: LockstepBa::new(cfg, chain.signer(p), chain.pki(), DELTA),
            })
            .run();
    }

    #[test]
    fn accessors() {
        let cfg = Config::new(2, 1).unwrap();
        let chain = Keychain::generate(2, 53);
        let ba = LockstepBa::new(cfg, chain.signer(PartyId::new(1)), chain.pki(), DELTA);
        assert!(!ba.is_invoked());
        assert_eq!(ba.decision(), None);
        assert_eq!(ba.id(), PartyId::new(1));
    }
}
