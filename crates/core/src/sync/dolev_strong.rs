//! Dolev–Strong authenticated broadcast (1983): worst-case-optimal `f + 1`
//! rounds, tolerating any `f < n`.
//!
//! The paper cites it as the classical worst-case baseline (its `f + 1`
//! round complexity is exactly what motivates studying *good-case* latency
//! instead). We use its signature-chain core twice: stand-alone as
//! [`DolevStrongBb`] and, one instance per party, inside the lock-step
//! Byzantine agreement primitive ([`super::LockstepBa`]).
//!
//! ## Lock-step timing
//!
//! Rounds have duration `3Δ`: with clock skew ≤ Δ and message delay ≤ Δ, a
//! message sent at a sender's round-`r` boundary arrives strictly before
//! any receiver's round-`r+1` boundary. A chain of `c` signatures is
//! accepted in local round `r` (1-based) iff `c ≥ r` and `c ≤ f + 1`;
//! accepted values with `c ≤ f` are re-signed and relayed at the next
//! boundary. After round `f + 1`, a party outputs the unique extracted
//! value, or the default `⊥` encoding if it extracted zero or ≥ 2 values.

use gcl_crypto::{Digest, MemoTag, Signature, Signer, Verifier, Verify};
use gcl_sim::{Context, Protocol};
use gcl_types::{Config, Duration, Encode, LocalTime, PartyId, Value};
use std::collections::BTreeSet;

/// The `⊥` encoding used when broadcast/agreement extracts no unique value.
pub const BOT_SENTINEL: Value = Value::new(u64::MAX);

/// A value with its signature chain for one Dolev–Strong instance.
///
/// `instance` identifies the designated sender whose broadcast this chain
/// belongs to (the BA primitive runs `n` instances in parallel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsRelay {
    /// The designated sender of this instance.
    pub instance: PartyId,
    /// The relayed value.
    pub value: Value,
    /// Distinct signatures over `(domain, instance, value)`; must include
    /// the instance sender's.
    pub chain: Vec<Signature>,
}

impl DsRelay {
    /// The digest every signer in a chain signs.
    pub fn digest(domain: &'static str, instance: PartyId, value: Value) -> Digest {
        Digest::of(&(domain, instance, value))
    }

    /// Starts a chain as the instance sender.
    pub fn originate(domain: &'static str, signer: &Signer, value: Value) -> Self {
        DsRelay {
            instance: signer.id(),
            value,
            chain: vec![signer.sign(Self::digest(domain, signer.id(), value))],
        }
    }

    /// Extends the chain with `signer`'s signature (no-op if present).
    #[must_use]
    pub fn extend(&self, domain: &'static str, signer: &Signer) -> Self {
        let mut next = self.clone();
        if !next.chain.iter().any(|s| s.signer() == signer.id()) {
            next.chain
                .push(signer.sign(Self::digest(domain, self.instance, self.value)));
        }
        next
    }

    /// Chain validity: all signatures distinct, valid, and the instance
    /// sender's signature present.
    ///
    /// With an amortizing [`Verifier`] this is *incremental*: verified
    /// chains are memoized by `(digest, exact signature bytes)`, and a chain
    /// whose all-but-last prefix already verified only MACs the newly
    /// appended signature — O(1) per relay instead of O(round). The
    /// structural checks (distinct signers, sender present) always run;
    /// they are cheap and sig-independent.
    pub fn verify(&self, domain: &'static str, v: &impl Verify) -> bool {
        let digest = Self::digest(domain, self.instance, self.value);
        let signers: BTreeSet<PartyId> = self.chain.iter().map(Signature::signer).collect();
        if signers.len() != self.chain.len() || !signers.contains(&self.instance) {
            return false;
        }
        let mut key = MemoTag::Chain.key(32 + 36 * self.chain.len());
        key.extend_from_slice(digest.as_bytes());
        let mut prefix_len = key.len();
        for sig in &self.chain {
            prefix_len = key.len();
            sig.encode(&mut key);
        }
        if let Some(verdict) = v.memo_check(&key) {
            return verdict;
        }
        // A memoized-true prefix covers distinctness, sender presence (for
        // its own sigs) and every prefix MAC; the full chain's structural
        // checks passed above, so only the appended signature is open.
        let verdict = match self.chain.split_last() {
            Some((last, prefix))
                if !prefix.is_empty() && v.memo_check(&key[..prefix_len]) == Some(true) =>
            {
                v.verify_embedded(digest, last)
            }
            _ => self.chain.iter().all(|s| v.verify_embedded(digest, s)),
        };
        v.memo_store(key, verdict);
        verdict
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// True when the chain is empty (never for constructed chains).
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }
}

/// Per-instance Dolev–Strong extraction state, shared by [`DolevStrongBb`]
/// and the BA primitive.
#[derive(Debug, Clone, Default)]
pub(crate) struct DsInstance {
    /// Extracted values (tracking stops at 2 — enough to know "not unique").
    pub extracted: BTreeSet<Value>,
}

impl DsInstance {
    /// The signature-independent half of the accept rule: would a chain of
    /// this length carrying this value matter in local round `round`?
    ///
    /// Checked *before* chain verification — when it is `false`,
    /// [`DsInstance::accept`] would reject without mutating state, so
    /// skipping verification is observationally identical and saves the
    /// dominant re-delivery cost (relays for already-extracted values).
    pub fn considers(&self, relay: &DsRelay, round: usize, f: usize) -> bool {
        relay.len() >= round
            && relay.len() <= f + 1
            && self.extracted.len() < 2
            && !self.extracted.contains(&relay.value)
    }

    /// Accepts a verified chain in local round `round` (1-based).
    /// Returns `true` if the value is newly extracted and should be relayed
    /// (i.e. the chain can still grow: `len ≤ f`).
    pub fn accept(&mut self, relay: &DsRelay, round: usize, f: usize) -> bool {
        if relay.len() < round || relay.len() > f + 1 {
            return false;
        }
        if self.extracted.len() >= 2 || self.extracted.contains(&relay.value) {
            return false;
        }
        self.extracted.insert(relay.value);
        relay.len() <= f
    }

    /// The decision after round `f + 1`: the unique extracted value or ⊥.
    pub fn decide(&self) -> Value {
        if self.extracted.len() == 1 {
            *self.extracted.iter().next().expect("len checked")
        } else {
            BOT_SENTINEL
        }
    }
}

gcl_types::wire_struct!(DsRelay {
    instance,
    value,
    chain
});

/// Wire message of stand-alone Dolev–Strong broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsMsg(pub DsRelay);

gcl_types::wire_newtype!(DsMsg);

const DS_DOMAIN: &str = "ds-bb";

/// Stand-alone Dolev–Strong Byzantine broadcast: tolerates any `f < n`,
/// commits after `f + 1` lock-step rounds (worst case = good case — the
/// contrast the paper draws with good-case-optimized protocols).
///
/// # Examples
///
/// ```
/// use gcl_core::sync::DolevStrongBb;
/// use gcl_crypto::Keychain;
/// use gcl_sim::{FixedDelay, Simulation, TimingModel};
/// use gcl_types::{Config, Duration, PartyId, Value};
///
/// let cfg = Config::new(4, 1)?;
/// let chain = Keychain::generate(4, 4);
/// let delta = Duration::from_micros(100);
/// let outcome = Simulation::build(cfg)
///     .timing(TimingModel::lockstep(delta))
///     .oracle(FixedDelay::new(delta))
///     .spawn_honest(|p| {
///         DolevStrongBb::new(cfg, chain.signer(p), chain.pki(), delta, PartyId::new(0),
///                            (p == PartyId::new(0)).then_some(Value::new(5)))
///     })
///     .run();
/// assert!(outcome.validity_holds(Value::new(5)));
/// # Ok::<(), gcl_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct DolevStrongBb {
    config: Config,
    signer: Signer,
    verifier: Verifier,
    big_delta: Duration,
    broadcaster: PartyId,
    input: Option<Value>,
    instance: DsInstance,
    outbox: Vec<DsRelay>,
    decided: bool,
}

impl DolevStrongBb {
    /// Round duration: `3Δ` absorbs skew ≤ Δ plus delay ≤ Δ with margin.
    pub fn round_duration(big_delta: Duration) -> Duration {
        big_delta * 3
    }

    /// Creates the party-side state.
    ///
    /// # Panics
    ///
    /// Panics when the input/broadcaster roles disagree.
    pub fn new(
        config: Config,
        signer: Signer,
        verifier: impl Into<Verifier>,
        big_delta: Duration,
        broadcaster: PartyId,
        input: Option<Value>,
    ) -> Self {
        assert_eq!(input.is_some(), signer.id() == broadcaster);
        DolevStrongBb {
            config,
            signer,
            verifier: verifier.into(),
            big_delta,
            broadcaster,
            input,
            instance: DsInstance::default(),
            outbox: Vec::new(),
            decided: false,
        }
    }

    fn round_of(&self, now: LocalTime) -> usize {
        (now.as_micros() / Self::round_duration(self.big_delta).as_micros()) as usize + 1
    }
}

impl Protocol for DolevStrongBb {
    type Msg = DsMsg;

    fn start(&mut self, ctx: &mut dyn Context<DsMsg>) {
        let r = Self::round_duration(self.big_delta);
        // Boundary timers for rounds 1..=f+1 plus the decision boundary.
        for k in 1..=(self.config.f() + 1) {
            ctx.set_timer(r * k as u64, k as u64);
        }
        if let Some(v) = self.input {
            let relay = DsRelay::originate(DS_DOMAIN, &self.signer, v);
            // Originator extracts its own value immediately.
            self.instance.accept(&relay, 1, self.config.f());
            ctx.multicast_except(DsMsg(relay), self.signer.id());
        }
    }

    fn on_message(&mut self, _from: PartyId, msg: DsMsg, ctx: &mut dyn Context<DsMsg>) {
        let relay = msg.0;
        if self.decided || relay.instance != self.broadcaster {
            return;
        }
        let round = self.round_of(ctx.now());
        // Sig-independent accept predicate first: relays that would be
        // rejected anyway (chiefly re-deliveries of an already-extracted
        // value) skip chain verification entirely.
        if !self.instance.considers(&relay, round, self.config.f())
            || !relay.verify(DS_DOMAIN, &self.verifier)
        {
            return;
        }
        if self.instance.accept(&relay, round, self.config.f()) {
            self.outbox.push(relay.extend(DS_DOMAIN, &self.signer));
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut dyn Context<DsMsg>) {
        if self.decided {
            return;
        }
        // Boundary k: flush relays, decide at the final boundary.
        for relay in std::mem::take(&mut self.outbox) {
            ctx.multicast_except(DsMsg(relay), self.signer.id());
        }
        if tag as usize == self.config.f() + 1 {
            self.decided = true;
            ctx.commit(self.instance.decide());
            ctx.terminate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_crypto::Keychain;
    use gcl_sim::{FixedDelay, Outcome, Scripted, ScriptedAction, Silent, Simulation, TimingModel};
    use gcl_types::SkewSchedule;

    const DELTA: Duration = Duration::from_micros(100);

    fn run(n: usize, f: usize, skew: Option<SkewSchedule>) -> Outcome {
        let cfg = Config::new(n, f).unwrap();
        let chain = Keychain::generate(n, 40);
        let mut b = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA));
        if let Some(s) = skew {
            b = b.skew(s);
        }
        b.spawn_honest(|p| {
            DolevStrongBb::new(
                cfg,
                chain.signer(p),
                chain.pki(),
                DELTA,
                PartyId::new(0),
                (p == PartyId::new(0)).then_some(Value::new(7)),
            )
        })
        .run()
    }

    #[test]
    fn honest_broadcaster_all_commit() {
        for (n, f) in [(4, 1), (4, 2), (4, 3), (7, 3), (6, 4)] {
            let o = run(n, f, None);
            assert!(o.validity_holds(Value::new(7)), "n={n} f={f}");
        }
    }

    #[test]
    fn latency_is_f_plus_1_rounds() {
        let o = run(4, 2, None);
        // Decision at boundary f+1 = 3 rounds of 3Δ.
        assert_eq!(
            o.good_case_latency(),
            Some(DolevStrongBb::round_duration(DELTA) * 3)
        );
    }

    #[test]
    fn tolerates_clock_skew_up_to_delta() {
        let skew = SkewSchedule::with_late_parties(
            4,
            &[(PartyId::new(2), DELTA), (PartyId::new(3), DELTA.halved())],
        );
        let o = run(4, 1, Some(skew));
        assert!(o.validity_holds(Value::new(7)));
    }

    #[test]
    fn silent_broadcaster_commits_bot_everywhere() {
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 41);
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Silent::new())
            .spawn_honest(|p| {
                DolevStrongBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        assert!(o.agreement_holds());
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(BOT_SENTINEL));
    }

    #[test]
    fn equivocating_broadcaster_agreed_output() {
        // Broadcaster signs both 0 and 1 and sends one to each half: the
        // relays cross-pollinate, everyone extracts both, decides ⊥ — the
        // classical DS guarantee even though the broadcaster is Byzantine.
        let cfg = Config::new(4, 1).unwrap();
        let chain = Keychain::generate(4, 42);
        let s0 = chain.signer(PartyId::new(0));
        let r0 = DsRelay::originate(DS_DOMAIN, &s0, Value::ZERO);
        let r1 = DsRelay::originate(DS_DOMAIN, &s0, Value::ONE);
        let mut actions = Vec::new();
        for p in [1, 2] {
            actions.push(ScriptedAction {
                at: LocalTime::ZERO,
                to: PartyId::new(p),
                msg: DsMsg(r0.clone()),
            });
        }
        actions.push(ScriptedAction {
            at: LocalTime::ZERO,
            to: PartyId::new(3),
            msg: DsMsg(r1.clone()),
        });
        let o = Simulation::build(cfg)
            .timing(TimingModel::lockstep(DELTA))
            .oracle(FixedDelay::new(DELTA))
            .byzantine(PartyId::new(0), Scripted::new(actions))
            .spawn_honest(|p| {
                DolevStrongBb::new(
                    cfg,
                    chain.signer(p),
                    chain.pki(),
                    DELTA,
                    PartyId::new(0),
                    None,
                )
            })
            .run();
        o.assert_agreement();
        assert!(o.all_honest_committed());
        assert_eq!(o.committed_value(), Some(BOT_SENTINEL));
    }

    #[test]
    fn chain_verification() {
        let chain = Keychain::generate(3, 43);
        let s0 = chain.signer(PartyId::new(0));
        let s1 = chain.signer(PartyId::new(1));
        let r = DsRelay::originate("d", &s0, Value::new(3));
        assert!(r.verify("d", &chain.pki()));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        let r2 = r.extend("d", &s1);
        assert_eq!(r2.len(), 2);
        assert!(r2.verify("d", &chain.pki()));
        // Extending twice with the same signer is a no-op.
        assert_eq!(r2.extend("d", &s1).len(), 2);
        // Wrong domain fails.
        assert!(!r2.verify("other", &chain.pki()));
        // Chain without the originator's signature fails.
        let forged = DsRelay {
            instance: PartyId::new(2),
            value: Value::new(3),
            chain: r2.chain.clone(),
        };
        assert!(!forged.verify("d", &chain.pki()));
    }

    #[test]
    fn instance_accept_rules() {
        let chain = Keychain::generate(5, 44);
        let s0 = chain.signer(PartyId::new(0));
        let f = 2;
        let mut inst = DsInstance::default();
        let r = DsRelay::originate("d", &s0, Value::new(1));
        // Round 2 demands ≥ 2 signatures: a 1-chain is rejected.
        assert!(!inst.accept(&r, 2, f));
        assert!(inst.extracted.is_empty());
        // Round 1 accepts and requests relay (1 ≤ f).
        assert!(inst.accept(&r, 1, f));
        // Duplicate value: no relay again.
        assert!(!inst.accept(&r, 1, f));
        // Second value accepted (cap 2), third ignored.
        let r2 = DsRelay::originate("d", &s0, Value::new(2));
        assert!(inst.accept(&r2, 1, f));
        let r3 = DsRelay::originate("d", &s0, Value::new(3));
        assert!(!inst.accept(&r3, 1, f));
        assert_eq!(inst.decide(), BOT_SENTINEL);
    }

    #[test]
    fn instance_decides_unique() {
        let chain = Keychain::generate(2, 45);
        let mut inst = DsInstance::default();
        let r = DsRelay::originate("d", &chain.signer(PartyId::new(0)), Value::new(9));
        inst.accept(&r, 1, 1);
        assert_eq!(inst.decide(), Value::new(9));
    }

    #[test]
    fn full_length_chain_not_relayed() {
        let chain = Keychain::generate(5, 46);
        let f = 1;
        let mut inst = DsInstance::default();
        let r = DsRelay::originate("d", &chain.signer(PartyId::new(0)), Value::new(1))
            .extend("d", &chain.signer(PartyId::new(1)));
        // len = 2 = f+1: accepted (round 2) but no relay needed.
        assert!(!inst.accept(&r, 2, f));
        assert_eq!(inst.decide(), Value::new(1));
    }

    use gcl_types::LocalTime;
}
