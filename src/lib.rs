//! # gcl — Good-case Latency of Byzantine Broadcast
//!
//! A complete, runnable reproduction of *"Good-case Latency of Byzantine
//! Broadcast: A Complete Categorization"* (Abraham, Nayak, Ren, Xiang —
//! PODC 2021): every protocol, every baseline, every lower-bound execution,
//! and the measurement harness that regenerates Table 1 and the figures.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`types`] — ids, values, clocks, resilience configuration.
//! * [`crypto`] — SHA-256, PKI, signatures, quorum certificates.
//! * [`sim`] — the deterministic discrete-event execution substrate.
//! * [`core`] — the broadcast protocols (async / psync / sync / dishonest
//!   majority), strawmen, and lower-bound executions.
//! * [`smr`] — BFT state machine replication on the 2-round engine.
//! * [`net`] — the threaded wall-clock runtime.
//!
//! # Quickstart
//!
//! ```
//! use gcl::core::asynchrony::TwoRoundBrb;
//! use gcl::crypto::Keychain;
//! use gcl::sim::{FixedDelay, Simulation, TimingModel};
//! use gcl::types::{Config, Duration, PartyId, Value};
//!
//! let cfg = Config::new(4, 1)?;
//! let chain = Keychain::generate(4, 7);
//! let outcome = Simulation::build(cfg)
//!     .timing(TimingModel::Asynchrony)
//!     .oracle(FixedDelay::new(Duration::from_micros(50)))
//!     .spawn_honest(|p| {
//!         TwoRoundBrb::new(cfg, chain.signer(p), chain.pki(), PartyId::new(0),
//!                          (p == PartyId::new(0)).then_some(Value::new(1)))
//!     })
//!     .run();
//! assert_eq!(outcome.good_case_rounds(), Some(2)); // the tight bound
//! # Ok::<(), gcl::types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gcl_core as core;
pub use gcl_crypto as crypto;
pub use gcl_net as net;
pub use gcl_sim as sim;
pub use gcl_smr as smr;
pub use gcl_types as types;
